"""Counting data dependences between array references.

The Omega test was "initially used in array data dependence testing"
(Section 2); with counting on top we can go beyond yes/no dependence
answers and *quantify* them: how many iteration pairs conflict, how
many values flow -- the quantities that size communication and decide
whether a transformation pays off.

A dependence from iteration ī (writing ``a[f(ī)]``) to iteration ī′
(reading ``a[g(ī′)]``) exists when

    f(ī) == g(ī′)  ∧  ī, ī′ ∈ domain  ∧  ī ≺ ī′ (lexicographic).

``dependence_formula`` builds that formula; ``count_dependences``
counts its solutions symbolically.
"""

from typing import List, Optional, Sequence, Tuple, Union

from repro.apps.loopnest import ArrayRef, LoopNest
from repro.core import SumOptions, SymbolicSum, count
from repro.core.options import DEFAULT_OPTIONS
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import And, Atom, Formula, Or


def _lex_before(src_vars: Sequence[str], dst_vars: Sequence[str]) -> Formula:
    """ī ≺ ī′ lexicographically (source executes strictly earlier)."""
    cases: List[Formula] = []
    for depth in range(len(src_vars)):
        parts: List[Formula] = []
        for k in range(depth):
            parts.append(
                Atom(
                    Constraint.equal(
                        Affine.var(src_vars[k]), Affine.var(dst_vars[k])
                    )
                )
            )
        parts.append(
            Atom(
                Constraint.leq(
                    Affine.var(src_vars[depth]) + 1,
                    Affine.var(dst_vars[depth]),
                )
            )
        )
        cases.append(And.of(*parts))
    return Or.of(*cases)


def dependence_formula(
    nest: LoopNest,
    source: ArrayRef,
    sink: ArrayRef,
    src_vars: Optional[Sequence[str]] = None,
    dst_vars: Optional[Sequence[str]] = None,
    require_order: bool = True,
) -> Tuple[Formula, List[str], List[str]]:
    """The conflict set between two references of one nest.

    Returns (formula, source iteration variables, sink iteration
    variables); the formula's free variables are those plus the
    symbolic loop bounds.
    """
    if source.array != sink.array:
        raise ValueError("references touch different arrays")
    base = nest.iter_vars
    src_vars = list(src_vars or ("%s_s" % v for v in base))
    dst_vars = list(dst_vars or ("%s_d" % v for v in base))
    src_domain = nest.iteration_formula().substitute_affine(
        {v: Affine.var(s) for v, s in zip(base, src_vars)}
    )
    dst_domain = nest.iteration_formula().substitute_affine(
        {v: Affine.var(d) for v, d in zip(base, dst_vars)}
    )
    cell = ["_dep%d" % k for k in range(len(source.subscripts))]
    src_access = source.access_formula(cell).substitute_affine(
        {v: Affine.var(s) for v, s in zip(base, src_vars)}
    )
    dst_access = sink.access_formula(cell).substitute_affine(
        {v: Affine.var(d) for v, d in zip(base, dst_vars)}
    )
    from repro.presburger.ast import Exists

    same_cell = Exists(cell, And.of(src_access, dst_access))
    parts = [src_domain, dst_domain, same_cell]
    if require_order:
        parts.append(_lex_before(src_vars, dst_vars))
    return And.of(*parts), src_vars, dst_vars


def count_dependences(
    nest: LoopNest,
    source: ArrayRef,
    sink: ArrayRef,
    options: SumOptions = DEFAULT_OPTIONS,
    require_order: bool = True,
) -> SymbolicSum:
    """Number of (source, sink) iteration pairs in conflict."""
    formula, src_vars, dst_vars = dependence_formula(
        nest, source, sink, require_order=require_order
    )
    return count(formula, src_vars + dst_vars, options)


def count_dependent_iterations(
    nest: LoopNest,
    source: ArrayRef,
    sink: ArrayRef,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Number of *sink* iterations that depend on some earlier write.

    Projects the pair set onto the sink iteration: the count of
    iterations that cannot start before a producer finishes -- a proxy
    for serialization (and for values communicated when producer and
    consumer land on different processors).
    """
    formula, src_vars, dst_vars = dependence_formula(nest, source, sink)
    from repro.presburger.ast import Exists

    projected = Exists(src_vars, formula)
    return count(projected, dst_vars, options)
