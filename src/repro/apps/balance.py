"""Load balance and balanced chunk scheduling (§1.1, [TF92], [HP93a]).

* ``flops_by_outer_iteration`` -- work performed by one iteration of an
  outer loop, symbolically in the loop variable: the quantity [TF92]
  uses to decide whether a parallel loop is load balanced.
* ``is_load_balanced`` -- the work is independent of the iteration.
* ``balanced_chunks`` -- given an unbalanced loop, assign contiguous
  iteration ranges to processors so each gets (nearly) the same number
  of flops (balanced chunk scheduling, [HP93a]).
"""

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.apps.loopnest import LoopNest
from repro.apps.counting import count_flops
from repro.core import SumOptions, SymbolicSum, count
from repro.core.options import DEFAULT_OPTIONS
from repro.presburger.ast import And
from repro.presburger.parser import parse


def flops_by_outer_iteration(
    nest: LoopNest, options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """Flops executed by one iteration of the outermost loop.

    The outer loop variable is left symbolic: the result is a function
    of it (and the other symbolic constants).
    """
    outer = nest.loops[0]
    inner = LoopNest(
        nest.loops[1:],
        nest.statements,
        guard=And.of(nest.guard, outer.bound_formula()),
    )
    total = SymbolicSum([])
    for stmt in nest.statements:
        domain = inner.statement_domain(stmt)
        depth = None if stmt.depth is None else max(stmt.depth - 1, 0)
        vars_ = inner.iter_vars if depth is None else inner.iter_vars[:depth]
        total = total + count(domain, vars_, options).scale(stmt.flops)
    return total


def is_load_balanced(
    nest: LoopNest, options: SumOptions = DEFAULT_OPTIONS
) -> Tuple[bool, SymbolicSum]:
    """Does every outer iteration perform the same number of flops?

    Returns (balanced, per-iteration work).  Balanced means the work
    does not depend on the outer loop variable -- neither in the values
    nor in the guards.
    """
    per_iter = flops_by_outer_iteration(nest, options).simplified()
    outer = nest.loops[0]
    outer_var = outer.var
    # Constraints merely restating the outer loop's own bounds do not
    # make the loop unbalanced; gist them away before judging.
    from repro.omega.redundancy import gist
    from repro.presburger.dnf import to_dnf

    context_clauses = to_dnf(And.of(nest.guard, outer.bound_formula()))
    context = context_clauses[0] if len(context_clauses) == 1 else None
    balanced = True
    for term in per_iter.terms:
        if outer_var in term.value.variables():
            balanced = False
            continue
        guard = gist(term.guard, context) if context is not None else term.guard
        if any(outer_var in c.variables() for c in guard.constraints):
            balanced = False
    return balanced, per_iter


def balanced_chunks(
    nest: LoopNest,
    processors: int,
    symbols: Optional[Dict[str, int]] = None,
    options: SumOptions = DEFAULT_OPTIONS,
) -> List[Tuple[int, int, int]]:
    """Contiguous chunks of the outer loop with near-equal flops.

    Returns ``[(first, last, flops), ...]`` -- one triple per
    processor (empty chunks get first > last).  Uses the symbolic
    prefix count W(c) = flops of iterations with outer <= c, evaluated
    at the concrete ``symbols``, and cuts at the P-quantiles.
    """
    symbols = dict(symbols or {})
    outer = nest.loops[0]
    per_iter = flops_by_outer_iteration(nest, options)

    lo_val = _eval_bound(outer.lower, symbols)
    hi_val = _eval_bound(outer.upper, symbols)
    if hi_val < lo_val:
        return [(lo_val, lo_val - 1, 0)] * processors

    def work_at(c: int) -> Fraction:
        env = dict(symbols)
        env[outer.var] = c
        return Fraction(per_iter.evaluate(env))

    prefix = [Fraction(0)]
    for c in range(lo_val, hi_val + 1):
        prefix.append(prefix[-1] + work_at(c))
    total = prefix[-1]

    chunks: List[Tuple[int, int, int]] = []
    start_idx = 0
    for k in range(1, processors + 1):
        target = total * k / processors
        end_idx = start_idx
        # Smallest cut with prefix >= target (monotone: binary search).
        lo_i, hi_i = start_idx, len(prefix) - 1
        while lo_i < hi_i:
            mid = (lo_i + hi_i) // 2
            if prefix[mid] >= target:
                hi_i = mid
            else:
                lo_i = mid + 1
        end_idx = lo_i
        first = lo_val + start_idx
        last = lo_val + end_idx - 1
        flops = int(prefix[end_idx] - prefix[start_idx])
        chunks.append((first, last, flops))
        start_idx = end_idx
    return chunks


def _eval_bound(expr, symbols: Dict[str, int]) -> int:
    from repro.presburger.nonlinear import lower as lower_expr
    from repro.intarith import floor_div

    affine, side, wilds = lower_expr(expr)
    if side:
        raise ValueError("chunking needs floor-free outer bounds")
    return affine.evaluate(symbols)
