"""Generalized cache-line mappings (Example 5's footnote).

The paper's Example 5 uses the simple mapping "a reference to element
a[i, j] references cache line (⌊(i-1)/16⌋, j)" and notes: "we could
also assume more general mappings, in which the cache lines can wrap
from one row to another and in which we don't know the alignment of
the first element of the array with the cache lines."  Both are
implemented here:

* **wrapped**: the array is linearized column-major with a concrete
  column extent; lines wrap across columns:
  ``line = floor(((i - base) + (j - base)·rows + align) / L)``.
* **unknown alignment**: the count is taken for every alignment
  offset 0..L-1 and the maximum reported (a safe capacity estimate).
"""

from typing import Optional, Sequence

from repro.apps.loopnest import LoopNest
from repro.apps.memory import touched_elements_formula
from repro.core import SumOptions, SymbolicSum, count
from repro.core.options import DEFAULT_OPTIONS
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.presburger.ast import And, Atom, Exists


def cache_lines_wrapped(
    nest: LoopNest,
    array: str,
    line_size: int,
    rows: int,
    alignment: int = 0,
    base_index: int = 1,
    options: SumOptions = DEFAULT_OPTIONS,
) -> SymbolicSum:
    """Distinct cache lines under a wrapping column-major layout.

    ``rows`` is the (concrete) column extent used for linearization:
    element (i, j) lives at address (i - base) + (j - base)·rows, and
    occupies line floor((address + alignment) / line_size).  Lines may
    span the seam between consecutive columns, unlike the simple
    mapping of Example 5.
    """
    if line_size <= 0 or rows <= 0:
        raise ValueError("line_size and rows must be positive")
    if not 0 <= alignment < line_size:
        raise ValueError("alignment must be in 0..line_size-1")
    refs = nest.references(array)
    if not refs:
        raise ValueError("array %r is not referenced" % array)
    arity = len(refs[0][1].subscripts)
    if arity != 2:
        raise ValueError("wrapped mapping needs a 2-D array")
    elem = [fresh_var("x") for _ in range(arity)]
    touched = touched_elements_formula(nest, array, elem)
    line = fresh_var("c")
    lv = Affine.var(line)
    address = (
        Affine.var(elem[0])
        + Affine({elem[1]: rows})
        + (alignment - base_index - base_index * rows)
    )
    # line·L <= address <= line·L + L - 1
    mapping = And.of(
        Atom(Constraint.leq(lv * line_size, address)),
        Atom(Constraint.leq(address, lv * line_size + (line_size - 1))),
    )
    formula = Exists(elem, And.of(touched, mapping))
    return count(formula, [line], options)


def cache_lines_worst_alignment(
    nest: LoopNest,
    array: str,
    line_size: int,
    rows: int,
    base_index: int = 1,
    options: SumOptions = DEFAULT_OPTIONS,
    **symbols: int,
):
    """Max distinct lines over all alignments (safe capacity bound).

    With the array's alignment unknown, a capacity estimate must cover
    the worst case; returns (worst alignment, line count).
    """
    best = None
    for align in range(line_size):
        result = cache_lines_wrapped(
            nest, array, line_size, rows, align, base_index, options
        )
        value = result.evaluate(symbols)
        if best is None or value > best[1]:
            best = (align, value)
    return best
