"""Iteration and flop counting; computation/memory balance (§1.1).

"We can create a Presburger formula whose solutions correspond to the
iterations of a loop.  By counting these, we obtain an estimate of the
execution time of the loop."
"""

from typing import Optional

from repro.apps.loopnest import LoopNest, Statement
from repro.core import SumOptions, SymbolicSum, count, sum_poly
from repro.core.options import DEFAULT_OPTIONS


def count_iterations(
    nest: LoopNest, options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """Number of iterations of the full nest, symbolically."""
    return count(nest.iteration_formula(), nest.iter_vars, options)


def count_flops(
    nest: LoopNest, options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """Total flops: Σ over statements of flops · |domain|."""
    total = SymbolicSum([])
    for stmt in nest.statements:
        domain = nest.statement_domain(stmt)
        vars_ = nest.iter_vars if stmt.depth is None else nest.iter_vars[: stmt.depth]
        total = total + count(domain, vars_, options).scale(stmt.flops)
    return total


def statement_executions(
    nest: LoopNest, stmt: Statement, options: SumOptions = DEFAULT_OPTIONS
) -> SymbolicSum:
    """How many times one statement executes."""
    vars_ = nest.iter_vars if stmt.depth is None else nest.iter_vars[: stmt.depth]
    return count(nest.statement_domain(stmt), vars_, options)


def machine_balance(nest: LoopNest, array: Optional[str] = None, **symbols: int):
    """flops per distinct memory location touched, at concrete sizes.

    The paper's computation/memory balance: compare the memory
    bandwidth requirements against the flop count of a code segment.
    Returns a Fraction (flops / locations).
    """
    from fractions import Fraction

    from repro.apps.memory import memory_locations_touched

    flops = count_flops(nest).evaluate(symbols)
    arrays = [array] if array else nest.arrays()
    locations = 0
    for a in arrays:
        locations += memory_locations_touched(nest, a).evaluate(symbols)
    if locations == 0:
        raise ValueError("loop touches no memory")
    return Fraction(flops, locations)
