"""Distinct memory locations and cache lines touched (§1.1, §6 Ex. 4-5).

The set of array elements touched by a nest is

    { x : ∃ iteration ∈ domain, ∃ ref : x == subscript(iteration) }.

When several references are *uniformly generated* (differ by constant
offsets, like a stencil) we summarize them via the convex hull of the
offsets (Section 5.1) to get a single clause; otherwise a union over
the references is built and the disjoint-DNF machinery handles
overlaps.

Cache lines: a reference to element ``a[i, j]`` of a column-major
array touches line ``(floor((i-1)/line), j)`` -- the simple mapping
the paper uses in Example 5 (no wrap-around between columns).
"""

from typing import List, Optional, Sequence

from repro.apps.loopnest import ArrayRef, LoopNest
from repro.core import SumOptions, SymbolicSum, count
from repro.core.options import DEFAULT_OPTIONS
from repro.omega.constraints import fresh_var
from repro.presburger.ast import And, Exists, Formula, Or
from repro.presburger.nonlinear import NLFloor, lower as lower_expr
from repro.presburger.parser import parse_expr
from repro.polyhedra.uniform import uniformly_generated_set


def touched_elements_formula(
    nest: LoopNest,
    array: str,
    target_vars: Sequence[str],
    use_hull: bool = True,
) -> Formula:
    """Formula over target_vars: the elements of ``array`` touched."""
    refs = nest.references(array)
    if not refs:
        raise ValueError("array %r is not referenced" % array)
    groups = _group_uniformly_generated(refs)
    pieces: List[Formula] = []
    for (stmt, base), offsets in groups:
        domain = nest.statement_domain(stmt)
        if use_hull and len(offsets) > 1:
            # Shift the domain through the base ref's subscripts:
            # x = subscript(iter) + offset.  Express iteration image.
            formula, exact = _hull_piece(
                nest, stmt, base, offsets, target_vars
            )
            if exact:
                pieces.append(formula)
                continue
        for off in offsets:
            shifted = ArrayRef(
                array,
                [s + int(o) for s, o in zip(base.subscripts, off)],
            )
            pieces.append(
                Exists(
                    nest.iter_vars,
                    And.of(domain, shifted.access_formula(target_vars)),
                )
            )
    return Or.of(*pieces)


def _group_uniformly_generated(refs):
    """Group (statement, ref) pairs by uniformly generated classes."""
    groups = []  # [((stmt, base_ref), [offsets])]
    for stmt, ref in refs:
        placed = False
        for (gstmt, base), offsets in groups:
            if gstmt is stmt:
                off = ref.constant_offset_from(base)
                if off is not None:
                    offsets.append(off)
                    placed = True
                    break
        if not placed:
            groups.append(
                ((stmt, ref), [tuple(0 for _ in ref.subscripts)])
            )
    return groups


def _hull_piece(nest, stmt, base, offsets, target_vars):
    """One summarized clause: x = base_subscript(iter) + Δ, Δ in hull."""
    domain = nest.statement_domain(stmt)
    # Rebase: y_k = base subscript value; then x = y + Δ.
    sub_vars = [fresh_var("m") for _ in base.subscripts]
    access = base.access_formula(sub_vars)
    inner, exact = uniformly_generated_set(
        And.of(domain, access),
        sub_vars,
        offsets,
        target_vars,
    )
    return Exists(nest.iter_vars, inner), exact


def memory_locations_touched(
    nest: LoopNest,
    array: str,
    options: SumOptions = DEFAULT_OPTIONS,
    use_hull: bool = True,
) -> SymbolicSum:
    """Number of distinct elements of ``array`` touched by the nest."""
    refs = nest.references(array)
    if not refs:
        raise ValueError("array %r is not referenced" % array)
    arity = len(refs[0][1].subscripts)
    target = [fresh_var("x") for _ in range(arity)]
    formula = touched_elements_formula(nest, array, target, use_hull)
    return count(formula, target, options)


def total_footprint(
    nest: LoopNest,
    options: SumOptions = DEFAULT_OPTIONS,
    **symbols: int,
) -> int:
    """Total distinct locations across every array the nest touches.

    The "memory bandwidth requirement" side of the paper's
    computation/memory balance; evaluated at concrete sizes because
    different arrays' symbolic counts cannot be meaningfully added as
    formulas over different index spaces.
    """
    total = 0
    for array in nest.arrays():
        total += memory_locations_touched(nest, array, options).evaluate(
            symbols
        )
    return total


def cache_lines_touched(
    nest: LoopNest,
    array: str,
    line_size: int = 16,
    options: SumOptions = DEFAULT_OPTIONS,
    use_hull: bool = True,
    base_index: int = 1,
) -> SymbolicSum:
    """Number of distinct cache lines touched (Example 5's mapping).

    Element (i, j, ...) maps to line (floor((i - base_index)/line_size),
    j, ...): lines are contiguous runs of ``line_size`` elements along
    the first dimension, aligned to the array start.
    """
    refs = nest.references(array)
    arity = len(refs[0][1].subscripts)
    elem = [fresh_var("x") for _ in range(arity)]
    line = [fresh_var("c") for _ in range(arity)]
    touched = touched_elements_formula(nest, array, elem, use_hull)
    from repro.omega.affine import Affine
    from repro.omega.constraints import Constraint
    from repro.presburger.ast import Atom

    first = NLFloor(
        parse_expr(elem[0]) - base_index, line_size
    )
    affine, side, wilds = lower_expr(first)
    mapping = [Atom(Constraint.equal(Affine.var(line[0]), affine))]
    mapping.extend(Atom(c) for c in side)
    for k in range(1, arity):
        mapping.append(
            Atom(Constraint.equal(Affine.var(line[k]), Affine.var(elem[k])))
        )
    formula = Exists(
        elem + wilds, And.of(touched, *mapping)
    )
    return count(formula, line, options)
