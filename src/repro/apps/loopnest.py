"""A model of affine loop nests.

The programs the paper analyzes: perfectly or imperfectly nested loops
with affine bounds (written in the formula expression syntax, floors
and ceilings allowed), optional affine guards, and statements with
affine array subscripts and a flop count.

Example -- the SOR kernel of Section 5.1::

    nest = LoopNest(
        loops=[Loop("i", "2", "N - 1"), Loop("j", "2", "N - 1")],
        statements=[
            Statement(
                flops=6,
                refs=[
                    ArrayRef("a", ["i", "j"]),
                    ArrayRef("a", ["i - 1", "j"]),
                    ArrayRef("a", ["i + 1", "j"]),
                    ArrayRef("a", ["i", "j - 1"]),
                    ArrayRef("a", ["i", "j + 1"]),
                ],
            )
        ],
    )
"""

from typing import List, Optional, Sequence, Tuple, Union

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.presburger.ast import And, Atom, Exists, Formula, TrueF
from repro.presburger.nonlinear import NLExpr, lower
from repro.presburger.parser import parse, parse_expr

ExprLike = Union[str, int, NLExpr, Affine]


def _expr(value: ExprLike) -> NLExpr:
    from repro.presburger.nonlinear import NLLin, _coerce

    if isinstance(value, str):
        return parse_expr(value)
    return _coerce(value)


class Loop:
    """``for var := lower to upper by step`` with affine bounds."""

    def __init__(
        self, var: str, lower: ExprLike, upper: ExprLike, step: int = 1
    ):
        if step <= 0:
            raise ValueError("only positive steps are supported")
        self.var = var
        self.lower = _expr(lower)
        self.upper = _expr(upper)
        self.step = step

    def bound_formula(self) -> Formula:
        """lower <= var <= upper (∧ step | var - lower for step > 1)."""
        lo_affine, lo_side, lo_wilds = lower(self.lower)
        hi_affine, hi_side, hi_wilds = lower(self.upper)
        v = Affine.var(self.var)
        atoms = [
            Atom(c)
            for c in lo_side
            + hi_side
            + [Constraint.leq(lo_affine, v), Constraint.leq(v, hi_affine)]
        ]
        body: Formula = And.of(*atoms)
        if self.step > 1:
            from repro.presburger.ast import StrideAtom

            body = And.of(body, StrideAtom(self.step, v - lo_affine))
        wilds = lo_wilds + hi_wilds
        if wilds:
            return Exists(wilds, body)
        return body

    def __repr__(self):
        s = " by %d" % self.step if self.step != 1 else ""
        return "for %s := %s to %s%s" % (self.var, self.lower, self.upper, s)


class ArrayRef:
    """``array[sub1, sub2, ...]`` with affine subscript expressions."""

    def __init__(self, array: str, subscripts: Sequence[ExprLike]):
        self.array = array
        self.subscripts = [_expr(s) for s in subscripts]

    def access_formula(self, target_vars: Sequence[str]) -> Formula:
        """target_vars == subscripts (with floor/ceil side conditions)."""
        if len(target_vars) != len(self.subscripts):
            raise ValueError("subscript arity mismatch")
        atoms: List[Formula] = []
        wilds: List[str] = []
        for tv, sub in zip(target_vars, self.subscripts):
            affine, side, ws = lower(sub)
            atoms.extend(Atom(c) for c in side)
            atoms.append(Atom(Constraint.equal(Affine.var(tv), affine)))
            wilds.extend(ws)
        body = And.of(*atoms)
        if wilds:
            return Exists(wilds, body)
        return body

    def constant_offset_from(self, other: "ArrayRef") -> Optional[Tuple[int, ...]]:
        """The constant vector d with self == other + d, if it exists.

        Two references are *uniformly generated* (§5.1, [GJ88]) when
        their subscripts differ only by constants.
        """
        from repro.presburger.nonlinear import NLLin

        if self.array != other.array or len(self.subscripts) != len(
            other.subscripts
        ):
            return None
        offsets = []
        for a, b in zip(self.subscripts, other.subscripts):
            la, ca, wa = lower(a)
            lb, cb, wb = lower(b)
            if ca or cb:
                return None  # floors involved: not a constant offset
            diff = la - lb
            if not diff.is_constant():
                return None
            offsets.append(diff.const)
        return tuple(offsets)

    def __repr__(self):
        return "%s[%s]" % (self.array, ", ".join(map(str, self.subscripts)))


class Statement:
    """A loop body statement: optional guard, flops, array references."""

    def __init__(
        self,
        flops: int = 1,
        refs: Sequence[ArrayRef] = (),
        guard: Optional[Union[str, Formula]] = None,
        depth: Optional[int] = None,
    ):
        self.flops = flops
        self.refs = list(refs)
        if isinstance(guard, str):
            guard = parse(guard)
        self.guard = guard if guard is not None else TrueF
        self.depth = depth  # number of enclosing loops; None = all

    def __repr__(self):
        return "Statement(flops=%d, refs=%r)" % (self.flops, self.refs)


class LoopNest:
    """An (im)perfect nest: loops outermost-first plus statements."""

    def __init__(
        self,
        loops: Sequence[Loop],
        statements: Sequence[Statement],
        guard: Optional[Union[str, Formula]] = None,
    ):
        self.loops = list(loops)
        self.statements = list(statements)
        if isinstance(guard, str):
            guard = parse(guard)
        self.guard = guard if guard is not None else TrueF
        names = [l.var for l in self.loops]
        if len(set(names)) != len(names):
            raise ValueError("duplicate loop variables")

    @property
    def iter_vars(self) -> List[str]:
        return [l.var for l in self.loops]

    def iteration_formula(self, depth: Optional[int] = None) -> Formula:
        """The iteration space of the outermost ``depth`` loops."""
        loops = self.loops if depth is None else self.loops[:depth]
        return And.of(self.guard, *(l.bound_formula() for l in loops))

    def statement_domain(self, stmt: Statement) -> Formula:
        """Iteration space in which ``stmt`` executes."""
        return And.of(self.iteration_formula(stmt.depth), stmt.guard)

    def references(self, array: Optional[str] = None) -> List[Tuple[Statement, ArrayRef]]:
        out = []
        for stmt in self.statements:
            for ref in stmt.refs:
                if array is None or ref.array == array:
                    out.append((stmt, ref))
        return out

    def arrays(self) -> List[str]:
        seen = {}
        for _, ref in self.references():
            seen.setdefault(ref.array, None)
        return list(seen)

    def __repr__(self):
        return "LoopNest(%r, %d statements)" % (self.loops, len(self.statements))
