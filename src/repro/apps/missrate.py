"""Cache-effectiveness estimation (§1.1, after [FST91]).

"By counting the number of solutions to these formulas, we can ...
determine which loops will flush the cache, allowing us to calculate
the cache miss rate [FST91]."

The model (following Ferrante-Sarkar-Thrash): a loop whose cache-line
footprint fits in the cache pays one miss per distinct line touched
(compulsory misses); a loop whose footprint exceeds the cache flushes
it, so reuse across outer iterations is lost and every line reference
that crosses an iteration boundary misses again.  The counts that feed
the model are exactly the symbolic quantities this library computes.
"""

from fractions import Fraction
from typing import Dict, NamedTuple

from repro.apps.loopnest import LoopNest
from repro.apps.counting import count_iterations
from repro.apps.memory import cache_lines_touched
from repro.core.options import DEFAULT_OPTIONS, SumOptions


class CacheEstimate(NamedTuple):
    """Outcome of the cache analysis for one array."""

    lines_touched: int
    references: int
    flushes_cache: bool
    estimated_misses: int
    miss_rate: Fraction


def estimate_cache_behavior(
    nest: LoopNest,
    array: str,
    cache_lines: int,
    line_size: int = 16,
    options: SumOptions = DEFAULT_OPTIONS,
    **symbols: int,
) -> CacheEstimate:
    """Estimate misses and miss rate for one array at concrete sizes.

    ``cache_lines`` is the cache capacity in lines.  If the footprint
    fits, misses = distinct lines (compulsory only).  If it does not,
    the loop flushes the cache: we charge one miss per line per
    *reference group* traversal -- the pessimistic bound [FST91] uses
    to flag loops needing tiling.
    """
    touched = cache_lines_touched(nest, array, line_size, options).evaluate(
        symbols
    )
    iterations = count_iterations(nest, options).evaluate(symbols)
    refs_per_iter = len(nest.references(array))
    references = iterations * refs_per_iter
    flushes = touched > cache_lines
    if not flushes:
        misses = touched
    else:
        # every line is evicted before reuse: each reference that
        # starts a new line run misses; bound by one miss per
        # reference per line-size stride of the traversal.
        from repro.intarith import ceil_div

        misses = min(references, touched * max(refs_per_iter, 1))
        misses = max(misses, touched)
    rate = Fraction(misses, references) if references else Fraction(0)
    return CacheEstimate(touched, references, flushes, misses, rate)


def flush_threshold(
    nest: LoopNest,
    array: str,
    cache_lines: int,
    symbol: str,
    search_range,
    line_size: int = 16,
    options: SumOptions = DEFAULT_OPTIONS,
    **fixed: int,
) -> Dict[int, bool]:
    """Map each size to whether the loop flushes the cache.

    The symbolic count makes this a table lookup, not a simulation:
    the paper's "determine which loops will flush the cache".
    """
    touched = cache_lines_touched(nest, array, line_size, options)
    out = {}
    for value in search_range:
        env = dict(fixed)
        env[symbol] = value
        out[value] = touched.evaluate(env) > cache_lines
    return out
