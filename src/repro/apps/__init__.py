"""Applications of symbolic counting (Section 1.1 of the paper).

Given a loop nest with affine bounds, guards and subscripts, the
modules here build Presburger formulas whose solutions correspond to:

* the iterations executed / flops performed (:mod:`repro.apps.counting`),
* the distinct memory locations or cache lines touched
  (:mod:`repro.apps.memory`),
* the array elements communicated under an HPF block-cyclic
  distribution (:mod:`repro.apps.comm`),

and count them -- estimating execution time, computing
computation/memory balance, checking load balance and sizing message
buffers (:mod:`repro.apps.balance`).
"""

from repro.apps.loopnest import ArrayRef, Loop, LoopNest, Statement
from repro.apps.counting import (
    count_flops,
    count_iterations,
    machine_balance,
)
from repro.apps.memory import cache_lines_touched, memory_locations_touched
from repro.apps.comm import (
    BlockCyclicDistribution,
    communication_volume,
    message_buffer_size,
)
from repro.apps.balance import (
    balanced_chunks,
    flops_by_outer_iteration,
    is_load_balanced,
)
from repro.apps.cachewrap import cache_lines_worst_alignment, cache_lines_wrapped
from repro.apps.deps import count_dependences, count_dependent_iterations
from repro.apps.missrate import estimate_cache_behavior, flush_threshold
from repro.apps.memory import total_footprint

__all__ = [
    "ArrayRef",
    "BlockCyclicDistribution",
    "Loop",
    "LoopNest",
    "Statement",
    "balanced_chunks",
    "cache_lines_touched",
    "cache_lines_worst_alignment",
    "cache_lines_wrapped",
    "count_dependences",
    "count_dependent_iterations",
    "estimate_cache_behavior",
    "flush_threshold",
    "total_footprint",
    "communication_volume",
    "count_flops",
    "count_iterations",
    "flops_by_outer_iteration",
    "is_load_balanced",
    "machine_balance",
    "memory_locations_touched",
    "message_buffer_size",
]
