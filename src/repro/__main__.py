"""Command-line interface: count or sum from a shell.

Examples::

    python -m repro count "1 <= i and i < j and j <= n" --over i,j
    python -m repro count "0 <= i+j <= 90" --over i,j --backend genfunc
    python -m repro sum "1 <= i <= n" --over i --poly "i*i"
    python -m repro count "1 <= i and 3*i <= n" --over i --simplify \
        --table n=0:20
    python -m repro simplify "x >= 1 and x >= 0 and (x <= 5 or x <= 9)"
    python -m repro fuzz --seed 0 --iterations 200
    python -m repro fuzz --replay tests/corpus
    python -m repro serve --http-port 8722 --answer-cache answers.sqlite
    python -m repro shardserve --shards 4 --http-port 8740
    python -m repro loadgen --requests 200 --clients 8 --rename-mix 0.5
"""

import argparse
import sys

from repro.core import BACKENDS, Strategy, SumOptions, count, stats, sum_poly
from repro.presburger.parser import parse
from repro.presburger.simplify import simplify


def _print_stats(args) -> None:
    """After-run counter dump (guards evaluated, caches hit, ...).

    Uses :func:`repro.core.stats.engine_snapshot`, the same entry
    point the batch service embeds in every response, so the CLI and
    the service report identical counter schemas.
    """
    if not args.stats:
        return
    print("-- stats --", file=sys.stderr)
    print(stats.format_stats(stats.engine_snapshot()), file=sys.stderr)


def _parse_at(spec: str):
    """``n=12`` -> ("n", 12), with argparse-friendly errors."""
    name, eq, value = spec.partition("=")
    name = name.strip()
    if not eq or not name:
        raise argparse.ArgumentTypeError(
            "--at expects sym=value (e.g. n=10), got %r" % spec
        )
    try:
        return name, int(value.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            "--at value for %r must be an integer, got %r"
            % (name, value.strip())
        )


def _parse_points(spec: str):
    """``n=1,m=2`` -> {"n": 1, "m": 2}: one complete evaluation point."""
    env = {}
    for part in spec.split(","):
        name, value = _parse_at(part)
        env[name] = value
    return env


def _parse_table(spec: str):
    """``n=0:20`` or ``n=0:20:2`` -> (symbol, range)."""
    name, _, rng = spec.partition("=")
    parts = rng.split(":")
    if not name or len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            "table spec must look like n=0:20 or n=0:20:2"
        )
    lo, hi = int(parts[0]), int(parts[1])
    step = int(parts[2]) if len(parts) == 3 else 1
    return name, range(lo, hi + 1, step)


def _options(args) -> SumOptions:
    return SumOptions(
        strategy=Strategy(args.strategy),
        remove_redundant=not args.keep_redundant,
    )


def _over(args):
    return [v.strip() for v in args.over.split(",") if v.strip()]


def main(argv=None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Count solutions to Presburger formulas (Pugh, PLDI 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, needs_over=True):
        p.add_argument("formula", help="formula text, e.g. '1 <= i <= n'")
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine counters (sat cache, normalize, FM "
            "eliminations, ...) to stderr after the run",
        )
        if needs_over:
            p.add_argument(
                "--over",
                required=True,
                help="comma-separated variables to count/sum over",
            )
            p.add_argument(
                "--strategy",
                default="exact",
                choices=[s.value for s in Strategy],
                help="rational-bound strategy (default: exact)",
            )
            p.add_argument(
                "--keep-redundant",
                action="store_true",
                help="skip redundant-constraint elimination",
            )
            p.add_argument(
                "--backend",
                choices=list(BACKENDS),
                default=None,
                help="counting backend: the splinter recursion, the "
                "generating-function engine, or the binary automaton "
                "(genfunc/automaton fall back to the recursion outside "
                "their fragments; default: REPRO_BACKEND or recursion)",
            )
            p.add_argument(
                "--simplify",
                action="store_true",
                help="post-process: merge residues, widen guards",
            )
            p.add_argument(
                "--table",
                type=_parse_table,
                help="also print values along one symbol, e.g. n=0:20",
            )
            p.add_argument(
                "--at",
                action="append",
                default=[],
                type=_parse_at,
                metavar="sym=value",
                help="evaluate at a symbol assignment (repeatable)",
            )

    common(sub.add_parser("count", help="count integer solutions"))
    p_sum = sub.add_parser("sum", help="sum a polynomial over the solutions")
    common(p_sum)
    p_sum.add_argument(
        "--poly", required=True, help="the summand, e.g. 'i*i + 2*j'"
    )
    p_eval = sub.add_parser(
        "eval",
        help="compile the answer and evaluate it at many points",
        description="Count (or sum, with --poly) once, compile the "
        "symbolic answer with repro.evalc, and serve --points/--table "
        "through the compiled evaluator.  --no-compile falls back to "
        "the interpreted tree-walk (same values, for A/B checking).",
    )
    common(p_eval)
    p_eval.add_argument(
        "--poly", help="optional summand (evaluate a sum, not a count)"
    )
    p_eval.add_argument(
        "--points",
        action="append",
        default=[],
        type=_parse_points,
        metavar="sym=v[,sym=v]",
        help="evaluate at a complete assignment (repeatable)",
    )
    p_eval.add_argument(
        "--no-compile",
        action="store_true",
        help="escape hatch: evaluate with the interpreted fallback",
    )
    p_simp = sub.add_parser(
        "simplify", help="simplify a formula to (disjoint) DNF"
    )
    p_simp.add_argument("formula")
    p_simp.add_argument(
        "--disjoint", action="store_true", help="make the clauses disjoint"
    )
    p_simp.add_argument(
        "--stats",
        action="store_true",
        help="print engine counters to stderr after the run",
    )

    p_batch = sub.add_parser(
        "batch",
        help="answer a JSONL batch of count/sum/simplify jobs",
        description="Read one JSON request per line (file or '-' for "
        "stdin), stream one JSON response per line to stdout in input "
        "order, and print a summary to stderr.  Per-job failures "
        "(timeout, parse error, budget, worker crash) become "
        "structured error responses with exit code 0; malformed "
        "input lines also get structured responses but exit 1.",
    )
    p_batch.add_argument(
        "input", help="JSONL request file, or '-' to read stdin"
    )
    p_batch.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (default: 1)",
    )
    p_batch.add_argument(
        "--cache",
        default=".repro-cache.sqlite",
        help="persistent result-cache file (default: %(default)s)",
    )
    p_batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache",
    )
    p_batch.add_argument(
        "--cache-limit",
        type=int,
        default=100000,
        metavar="N",
        help="max cached results before LRU eviction (default: %(default)s)",
    )
    p_batch.add_argument(
        "--answer-cache",
        metavar="PATH",
        help="persist counting-recursion root answers to PATH (the "
        "answer memo's sqlite layer; shorthand for REPRO_ANSWER_DB, "
        "inherited by worker processes)",
    )
    p_batch.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="per-job wall-clock timeout (default: %(default)s; "
        "a request's own 'timeout' field wins)",
    )
    p_batch.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="per-job work budget in satisfiability calls "
        "(default: none; a request's own 'budget' field wins)",
    )
    p_batch.add_argument(
        "--summary-json",
        metavar="PATH",
        help="also write the end-of-batch summary as JSON to PATH",
    )

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived counting daemon (HTTP + JSONL)",
        description="Serve count/sum/simplify/evaluate requests from a "
        "warm process.  Answers come from the persistent results store "
        "(warm), an identical in-flight computation (coalesced), or a "
        "fresh executor job under admission control (cold).  SIGTERM "
        "or SIGINT drains in-flight work and exits 0.  REPRO_SERVE_* "
        "environment variables provide defaults for every tuning flag.",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    p_serve.add_argument(
        "--http-port",
        type=int,
        default=8722,
        help="HTTP port; 0 picks a free port (default: %(default)s)",
    )
    p_serve.add_argument(
        "--jsonl-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve JSONL-over-TCP on PORT (0 picks a free port; "
        "default: HTTP only)",
    )
    p_serve.add_argument(
        "--cache",
        default=".repro-cache.sqlite",
        help="persistent result-cache file (default: %(default)s)",
    )
    p_serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent result cache (no warm tier)",
    )
    p_serve.add_argument(
        "--cache-limit",
        type=int,
        default=100000,
        metavar="N",
        help="max cached results before LRU eviction (default: %(default)s)",
    )
    p_serve.add_argument(
        "--answer-cache",
        metavar="PATH",
        help="persist counting-recursion root answers to PATH "
        "(shorthand for REPRO_ANSWER_DB, inherited by worker processes)",
    )
    p_serve.add_argument(
        "--automaton-cache",
        metavar="PATH",
        help="persist built binary automata to PATH so restarts keep "
        "resident member/count_below sets (shorthand for "
        "REPRO_AUTOMATON_DB; may be the same file as --answer-cache)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="cold-job worker slots (default: REPRO_SERVE_WORKERS or 4)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="max in-flight cold jobs before load-shedding "
        "(default: REPRO_SERVE_QUEUE or 64)",
    )
    p_serve.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="R",
        help="per-tenant cold dispatches per second "
        "(default: REPRO_SERVE_RATE or unlimited)",
    )
    p_serve.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help="per-tenant token-bucket burst (default: REPRO_SERVE_BURST or 16)",
    )
    p_serve.add_argument(
        "--tenant-budget",
        type=int,
        default=None,
        metavar="N",
        help="ceiling on any one job's sat-call budget "
        "(default: REPRO_SERVE_TENANT_BUDGET or none)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-job wall-clock timeout "
        "(default: REPRO_SERVE_TIMEOUT or 60)",
    )
    p_serve.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="N",
        help="default per-job sat-call budget "
        "(default: REPRO_SERVE_BUDGET or none)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max wait for in-flight jobs on shutdown "
        "(default: REPRO_SERVE_DRAIN or 30)",
    )

    p_shard = sub.add_parser(
        "shardserve",
        help="run the shard router over N supervised serve daemons",
        description="One router process owning the listening ports "
        "over N 'repro serve' workers, each pinned to a disjoint "
        "hash-prefix slice of the canonical-content-hash keyspace.  "
        "The router speaks the daemon's exact HTTP + JSONL protocols, "
        "coalesces duplicate hashes fleet-wide, answers settled "
        "hashes from a router-side read replica, and supervises "
        "workers (health checks, restart with backoff, SIGTERM drain "
        "fan-out).  REPRO_SHARD_* environment variables provide "
        "defaults for every tuning flag.",
    )
    p_shard.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)"
    )
    p_shard.add_argument(
        "--http-port",
        type=int,
        default=8740,
        help="router HTTP port; 0 picks a free port (default: %(default)s)",
    )
    p_shard.add_argument(
        "--jsonl-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve JSONL-over-TCP on PORT (0 picks a free port; "
        "default: HTTP only)",
    )
    p_shard.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="worker daemon count (default: REPRO_SHARD_N or 4)",
    )
    p_shard.add_argument(
        "--prefix-bits",
        type=int,
        default=None,
        metavar="B",
        help="leading content-hash bits used for ownership "
        "(default: REPRO_SHARD_BITS or 16)",
    )
    p_shard.add_argument(
        "--cache-dir",
        default=".repro-shards",
        metavar="DIR",
        help="directory for the shared shard store file "
        "(default: %(default)s)",
    )
    p_shard.add_argument(
        "--no-replica",
        action="store_true",
        help="disable the router-side warm read replica",
    )
    p_shard.add_argument(
        "--replica-limit",
        type=int,
        default=None,
        metavar="N",
        help="replica LRU entries (default: REPRO_SHARD_REPLICA_LIMIT "
        "or 4096)",
    )
    p_shard.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        metavar="N",
        help="max fleet in-flight computations before load-shedding "
        "(default: REPRO_SHARD_QUEUE or 256)",
    )
    p_shard.add_argument(
        "--health-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="worker /healthz probe period (default: REPRO_SHARD_HEALTH "
        "or 1.0)",
    )
    p_shard.add_argument(
        "--forward-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max time to keep retrying a request across worker "
        "restarts (default: 300)",
    )
    p_shard.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="max wait for in-flight work and worker drains on "
        "shutdown (default: REPRO_SHARD_DRAIN or 30)",
    )

    p_loadgen = sub.add_parser(
        "loadgen",
        help="replay a request corpus against the serve daemon",
        description="Benchmark client for 'repro serve': replay a "
        "request corpus at N concurrent clients, optionally "
        "alpha-renaming a fraction of requests (same canonical hash, "
        "different variable names), and report throughput, per-tier "
        "latency percentiles, and the daemon's coalesce/hit-rate "
        "counters as JSON.  Without --url an in-process daemon is "
        "spun up and drained around the run.",
    )
    p_loadgen.add_argument(
        "--url",
        metavar="http://HOST:PORT",
        help="drive a running daemon over HTTP (default: in-process)",
    )
    p_loadgen.add_argument(
        "--corpus",
        metavar="PATH",
        help="request pool: a testkit corpus directory or a JSONL "
        "request file (default: the built-in base set)",
    )
    p_loadgen.add_argument(
        "--requests",
        type=int,
        default=64,
        metavar="N",
        help="total requests per pass (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent clients (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--rename-mix",
        type=float,
        default=0.0,
        metavar="P",
        help="fraction of requests alpha-renamed (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--passes",
        type=int,
        default=1,
        metavar="N",
        help="in-process only: replay the corpus N times against one "
        "daemon, to measure warm-tier behaviour (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--seed", type=int, default=0, help="rename-mix RNG seed"
    )
    p_loadgen.add_argument(
        "--json",
        metavar="PATH",
        help="also write the summary JSON to PATH",
    )
    p_loadgen.add_argument(
        "--assert-no-duplicates",
        action="store_true",
        help="exit 1 if any content hash was cold-computed more than "
        "once (fleet dedup check for shardserve targets)",
    )
    p_loadgen.add_argument(
        "--cache",
        default=".repro-cache.sqlite",
        help="in-process only: result-cache file (default: %(default)s)",
    )
    p_loadgen.add_argument(
        "--no-cache",
        action="store_true",
        help="in-process only: disable the persistent result cache",
    )
    p_loadgen.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="in-process only: cold-job worker slots",
    )
    p_loadgen.add_argument(
        "--queue-limit", type=int, default=None, metavar="N",
        help="in-process only: cold-queue limit",
    )
    p_loadgen.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="in-process only: per-job timeout",
    )
    p_loadgen.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="in-process only: per-job sat-call budget",
    )

    from repro.testkit.fuzz import add_fuzz_parser

    add_fuzz_parser(sub)

    args = parser.parse_args(argv)

    if args.command == "batch":
        from repro.service.batch import batch_main

        return batch_main(args)

    if args.command == "serve":
        from repro.serve.http import serve_main

        return serve_main(args)

    if args.command == "shardserve":
        from repro.shard.router import shardserve_main

        return shardserve_main(args)

    if args.command == "loadgen":
        from repro.serve.loadgen import loadgen_main

        return loadgen_main(args)

    if args.command == "fuzz":
        from repro.testkit.fuzz import fuzz_main

        return fuzz_main(args)

    if args.stats:
        stats.reset_stats()
        stats.enable_stats()

    if args.command == "simplify":
        clauses = simplify(parse(args.formula), disjoint=args.disjoint)
        if not clauses:
            print("FALSE")
        for clause in clauses:
            print(clause)
        _print_stats(args)
        return 0

    if args.command == "eval" and args.no_compile:
        from repro.evalc import set_compile_enabled

        set_compile_enabled(False)

    backend = getattr(args, "backend", None)
    if backend is not None:
        from repro.core import set_backend

        # Set the global (not just the per-call override) so --stats
        # reports the backend the run actually used.
        set_backend(backend)

    over = _over(args)
    poly = getattr(args, "poly", None)
    if poly is not None:
        result = sum_poly(args.formula, over, poly, _options(args))
    else:
        result = count(args.formula, over, _options(args))
    if args.simplify:
        result = result.simplified()
    print(result)

    if args.command == "eval":
        # as_function() closes over the compiled evaluator (or the
        # interpreted fallback under --no-compile).
        fn = result.as_function()
        for env in args.points:
            print("at %s: %s" % (env, fn(**env)))
    fixed = dict(args.at)
    if fixed:
        print("at %s: %s" % (fixed, result.evaluate(fixed)))
    if args.table:
        name, values = args.table
        for v, c in result.table(name, values, **fixed):
            print("  %s=%-6d %s" % (name, v, c))
    _print_stats(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
