"""Exact multivariate (quasi-)polynomials.

A :class:`Polynomial` maps monomials to rational coefficients.  A
monomial is a sorted tuple of ``(atom, exponent)`` pairs where an atom
is a variable name or a :class:`~repro.qpoly.atoms.ModAtom`.  All
arithmetic is exact (``fractions.Fraction``).

These are the values the summation engine manipulates: the summand of
``(Σ v : P : z)`` and the per-piece values of the final answer.
"""

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.qpoly.atoms import Atom, ModAtom, atom_sort_key, evaluate_atom

Monomial = Tuple[Tuple[Atom, int], ...]
Scalar = Union[int, Fraction]


def _normalize_monomial(pairs: Iterable[Tuple[Atom, int]]) -> Monomial:
    merged: Dict[Atom, int] = {}
    for atom, exp in pairs:
        if exp:
            merged[atom] = merged.get(atom, 0) + exp
    return tuple(
        sorted(
            ((a, e) for a, e in merged.items() if e),
            key=lambda ae: (atom_sort_key(ae[0]), ae[1]),
        )
    )


class Polynomial:
    """Immutable exact multivariate polynomial over variable/mod atoms."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Mapping[Monomial, Scalar]] = None):
        clean: Dict[Monomial, Fraction] = {}
        if terms:
            for mono, coef in terms.items():
                coef = Fraction(coef)
                if coef:
                    mono = _normalize_monomial(mono)
                    clean[mono] = clean.get(mono, Fraction(0)) + coef
                    if not clean[mono]:
                        del clean[mono]
        object.__setattr__(self, "terms", clean)

    def __setattr__(self, name, value):
        raise AttributeError("Polynomial is immutable")

    # -- constructors --------------------------------------------------

    @classmethod
    def constant(cls, value: Scalar) -> "Polynomial":
        value = Fraction(value)
        return cls({(): value} if value else {})

    @classmethod
    def variable(cls, name: str) -> "Polynomial":
        return cls({((name, 1),): Fraction(1)})

    @classmethod
    def atom(cls, atom: Atom) -> "Polynomial":
        return cls({((atom, 1),): Fraction(1)})

    @classmethod
    def from_affine(
        cls, coeffs: Mapping[str, Scalar], const: Scalar = 0
    ) -> "Polynomial":
        terms: Dict[Monomial, Scalar] = {}
        for var, c in coeffs.items():
            if c:
                terms[((var, 1),)] = Fraction(c)
        if const:
            terms[()] = Fraction(const)
        return cls(terms)

    zero = None  # populated after class definition
    one = None

    # -- predicates and views ------------------------------------------

    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(not mono for mono in self.terms)

    def constant_value(self) -> Fraction:
        if not self.is_constant():
            raise ValueError("polynomial is not constant: %s" % self)
        return self.terms.get((), Fraction(0))

    def atoms(self) -> List[Atom]:
        seen: Dict[Atom, None] = {}
        for mono in self.terms:
            for atom, _ in mono:
                seen.setdefault(atom, None)
        return list(seen)

    def variables(self) -> List[str]:
        """All variable names, including those inside mod atoms."""
        seen: Dict[str, None] = {}
        for atom in self.atoms():
            if isinstance(atom, str):
                seen.setdefault(atom, None)
            else:
                for v in atom.variables():
                    seen.setdefault(v, None)
        return list(seen)

    def degree_in(self, var: str) -> int:
        """Degree in the plain-variable atom ``var`` (mod atoms ignored)."""
        best = 0
        for mono in self.terms:
            for atom, exp in mono:
                if atom == var:
                    best = max(best, exp)
        return best

    def total_degree(self) -> int:
        best = 0
        for mono in self.terms:
            best = max(best, sum(exp for _, exp in mono))
        return best

    def uses_var(self, var: str) -> bool:
        return var in self.variables()

    # -- arithmetic -----------------------------------------------------

    def _coerce(self, other) -> "Polynomial":
        if isinstance(other, Polynomial):
            return other
        if isinstance(other, (int, Fraction)):
            return Polynomial.constant(other)
        return NotImplemented

    def __add__(self, other) -> "Polynomial":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        terms = dict(self.terms)
        for mono, coef in other.terms.items():
            terms[mono] = terms.get(mono, Fraction(0)) + coef
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.terms.items()})

    def __sub__(self, other) -> "Polynomial":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other) -> "Polynomial":
        return (-self) + other

    def __mul__(self, other) -> "Polynomial":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        terms: Dict[Monomial, Fraction] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                mono = _normalize_monomial(m1 + m2)
                terms[mono] = terms.get(mono, Fraction(0)) + c1 * c2
        return Polynomial(terms)

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> "Polynomial":
        if not isinstance(scalar, (int, Fraction)):
            return NotImplemented
        inv = Fraction(1, 1) / Fraction(scalar)
        return Polynomial({m: c * inv for m, c in self.terms.items()})

    def __pow__(self, exp: int) -> "Polynomial":
        if exp < 0:
            raise ValueError("negative power of a polynomial")
        result = Polynomial.constant(1)
        base = self
        while exp:
            if exp & 1:
                result = result * base
            base = base * base
            exp >>= 1
        return result

    def __eq__(self, other) -> bool:
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    # -- structure ------------------------------------------------------

    def coefficients_in(self, var: str) -> Dict[int, "Polynomial"]:
        """View as a univariate polynomial in ``var``.

        Returns {exponent: coefficient polynomial}.  Raises ValueError
        if ``var`` occurs inside a mod atom (such occurrences are not
        polynomial in ``var``).
        """
        out: Dict[int, Dict[Monomial, Fraction]] = {}
        for mono, coef in self.terms.items():
            exp = 0
            rest: List[Tuple[Atom, int]] = []
            for atom, e in mono:
                if atom == var:
                    exp = e
                elif isinstance(atom, ModAtom) and var in atom.variables():
                    raise ValueError(
                        "%s occurs inside mod atom %s; not polynomial" % (var, atom)
                    )
                else:
                    rest.append((atom, e))
            out.setdefault(exp, {})[tuple(rest)] = coef
        return {e: Polynomial(t) for e, t in out.items()}

    def substitute(self, var: str, replacement: "Polynomial") -> "Polynomial":
        """Substitute a polynomial for a plain-variable atom.

        If ``var`` occurs inside mod atoms, the replacement must be an
        integer affine expression over plain variables (so the mod atom
        stays a mod atom).
        """
        result = Polynomial()
        for mono, coef in self.terms.items():
            piece = Polynomial({(): coef})
            for atom, exp in mono:
                if atom == var:
                    piece = piece * replacement ** exp
                elif isinstance(atom, ModAtom) and var in atom.variables():
                    coeffs, const = replacement.as_integer_affine()
                    new_atom = atom.substitute_var(var, coeffs, const)
                    if new_atom.is_constant():
                        piece = piece * Fraction(new_atom.const) ** exp
                    else:
                        piece = piece * Polynomial.atom(new_atom) ** exp
                else:
                    piece = piece * Polynomial.atom(atom) ** exp
            result = result + piece
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Polynomial":
        terms: Dict[Monomial, Fraction] = {}
        for mono, coef in self.terms.items():
            new_mono = []
            for atom, exp in mono:
                if isinstance(atom, str):
                    new_mono.append((mapping.get(atom, atom), exp))
                else:
                    new_mono.append((atom.rename(mapping), exp))
            mono2 = _normalize_monomial(new_mono)
            terms[mono2] = terms.get(mono2, Fraction(0)) + coef
        return Polynomial(terms)

    def as_integer_affine(self) -> Tuple[Dict[str, int], int]:
        """Decompose as an integer affine expression of plain variables.

        Raises ValueError if the polynomial is not affine with integer
        coefficients over plain variables only.
        """
        coeffs: Dict[str, int] = {}
        const = 0
        for mono, coef in self.terms.items():
            if coef.denominator != 1:
                raise ValueError("non-integer coefficient in %s" % self)
            if not mono:
                const = int(coef)
            elif (
                len(mono) == 1
                and mono[0][1] == 1
                and isinstance(mono[0][0], str)
            ):
                coeffs[mono[0][0]] = int(coef)
            else:
                raise ValueError("not affine: %s" % self)
        return coeffs, const

    # -- evaluation and display ------------------------------------------

    def evaluate(self, env: Mapping[str, int]) -> Fraction:
        total = Fraction(0)
        for mono, coef in self.terms.items():
            val = coef
            for atom, exp in mono:
                val *= Fraction(evaluate_atom(atom, env)) ** exp
            total += val
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coef in sorted(
            self.terms.items(),
            key=lambda mc: (
                -sum(e for _, e in mc[0]),
                tuple((atom_sort_key(a), e) for a, e in mc[0]),
            ),
        ):
            factors = []
            for atom, exp in mono:
                name = atom if isinstance(atom, str) else str(atom)
                factors.append(name if exp == 1 else "%s**%d" % (name, exp))
            body = "*".join(factors)
            if not body:
                parts.append(str(coef))
            elif coef == 1:
                parts.append(body)
            elif coef == -1:
                parts.append("-%s" % body)
            else:
                parts.append("%s*%s" % (coef, body))
        out = " + ".join(parts)
        return out.replace("+ -", "- ")

    def __repr__(self) -> str:
        return "Polynomial(%s)" % self


Polynomial.zero = Polynomial()
Polynomial.one = Polynomial.constant(1)
