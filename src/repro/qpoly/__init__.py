"""Quasi-polynomials: the value domain of symbolic counting.

The answers produced by the paper's method are polynomials in the
symbolic constants whose coefficients may depend periodically on those
constants -- e.g. ``(3*n**2 + 2*n - (n mod 2)) / 4`` from Example 6.
We represent these as multivariate polynomials over Q whose generators
("atoms") are either plain variables or ``(affine expression) mod c``
terms.
"""

from repro.qpoly.atoms import ModAtom
from repro.qpoly.polynomial import Polynomial

__all__ = ["ModAtom", "Polynomial"]
