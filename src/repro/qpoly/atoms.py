"""Atoms that can appear as polynomial generators.

A polynomial generator is either a plain variable (a ``str``) or a
:class:`ModAtom` -- an integer affine expression reduced modulo a
positive constant.  Mod atoms are what make our polynomials
*quasi*-polynomials: they are bounded, periodic functions of the
symbolic constants, exactly the ``n mod 3`` terms of Section 4.2.1.
"""

from typing import Dict, Mapping, Tuple, Union

Atom = Union[str, "ModAtom"]


class ModAtom:
    """``(sum(coef*var) + const) mod modulus`` with 0 <= value < modulus.

    Immutable and hashable; the affine part is canonicalized by reducing
    every coefficient and the constant modulo ``modulus`` and dropping
    zero coefficients, so equal functions compare equal.
    """

    __slots__ = ("coeffs", "const", "modulus", "_hash")

    def __init__(self, coeffs: Mapping[str, int], const: int, modulus: int):
        if modulus <= 0:
            raise ValueError("modulus must be positive")
        reduced = {v: c % modulus for v, c in coeffs.items() if c % modulus}
        object.__setattr__(self, "coeffs", tuple(sorted(reduced.items())))
        object.__setattr__(self, "const", const % modulus)
        object.__setattr__(self, "modulus", modulus)
        object.__setattr__(
            self, "_hash", hash((self.coeffs, self.const, self.modulus))
        )

    def __setattr__(self, name, value):
        raise AttributeError("ModAtom is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ModAtom)
            and self.modulus == other.modulus
            and self.const == other.const
            and self.coeffs == other.coeffs
        )

    def __lt__(self, other) -> bool:
        # Ordering only matters for canonical monomial sorting; order
        # mod atoms after all plain variables, then structurally.
        if isinstance(other, str):
            return False
        return (self.modulus, self.coeffs, self.const) < (
            other.modulus,
            other.coeffs,
            other.const,
        )

    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for var, coef in self.coeffs:
            total += coef * env[var]
        return total % self.modulus

    def substitute_var(
        self, var: str, coeffs: Mapping[str, int], const: int
    ) -> "ModAtom":
        """Replace ``var`` by an integer affine expression."""
        my = dict(self.coeffs)
        k = my.pop(var, 0)
        if k == 0:
            return self
        new_const = self.const + k * const
        for v, c in coeffs.items():
            my[v] = my.get(v, 0) + k * c
        return ModAtom(my, new_const, self.modulus)

    def rename(self, mapping: Mapping[str, str]) -> "ModAtom":
        return ModAtom(
            {mapping.get(v, v): c for v, c in self.coeffs},
            self.const,
            self.modulus,
        )

    def __str__(self) -> str:
        parts = []
        for var, coef in self.coeffs:
            if coef == 1:
                parts.append(var)
            else:
                parts.append("%d*%s" % (coef, var))
        if self.const or not parts:
            parts.append(str(self.const))
        return "((%s) mod %d)" % (" + ".join(parts), self.modulus)

    __repr__ = __str__


def atom_sort_key(atom: Atom):
    """Total order over atoms: plain variables first, then mod atoms."""
    if isinstance(atom, str):
        return (0, atom, (), 0, 0)
    return (1, "", atom.coeffs, atom.const, atom.modulus)


def atom_variables(atom: Atom) -> Tuple[str, ...]:
    if isinstance(atom, str):
        return (atom,)
    return atom.variables()


def evaluate_atom(atom: Atom, env: Mapping[str, int]) -> int:
    if isinstance(atom, str):
        return env[atom]
    return atom.evaluate(env)
