"""A tiny parser for polynomial summands.

``parse_polynomial("i*i + 2*j - 3")`` builds the
:class:`~repro.qpoly.polynomial.Polynomial` used as the summand z of
``(Σ V : P : z)``.  Supports +, -, *, **, integer literals, variables
and parentheses (full polynomial arithmetic, unlike the affine
expressions of the constraint language).
"""

import re
from typing import List, Optional

from repro.qpoly.polynomial import Polynomial

_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9']*)"
    r"|(?P<op>\*\*|[-+*()]))"
)


class PolynomialParseError(ValueError):
    pass


def parse_polynomial(text: str) -> Polynomial:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m:
            if text[pos:].strip():
                raise PolynomialParseError(
                    "unexpected character %r" % text[pos]
                )
            break
        tokens.append(m.group(m.lastgroup))
        pos = m.end()
    state = _State(tokens)
    poly = _sum(state)
    if state.peek() is not None:
        raise PolynomialParseError("trailing input %r" % state.peek())
    return poly


class _State:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise PolynomialParseError("unexpected end of input")
        self.pos += 1
        return tok


def _sum(s: _State) -> Polynomial:
    value = _product(s)
    while s.peek() in ("+", "-"):
        op = s.next()
        rhs = _product(s)
        value = value + rhs if op == "+" else value - rhs
    return value


def _product(s: _State) -> Polynomial:
    value = _power(s)
    while s.peek() == "*":
        s.next()
        value = value * _power(s)
    return value


def _power(s: _State) -> Polynomial:
    # Unary minus binds looser than **, so -x**2 means -(x**2) (the
    # usual mathematical and Python convention, and what str(Polynomial)
    # means when it prints a leading minus).
    if s.peek() == "-":
        s.next()
        return -_power(s)
    base = _atom(s)
    if s.peek() == "**":
        s.next()
        exp = s.next()
        if not exp.isdigit():
            raise PolynomialParseError("exponent must be an integer")
        return base ** int(exp)
    return base


def _atom(s: _State) -> Polynomial:
    tok = s.peek()
    if tok is None:
        raise PolynomialParseError("unexpected end of input")
    if tok == "(":
        s.next()
        inner = _sum(s)
        if s.next() != ")":
            raise PolynomialParseError("expected )")
        return inner
    s.next()
    if tok.isdigit():
        return Polynomial.constant(int(tok))
    if re.match(r"^[A-Za-z_]", tok):
        return Polynomial.variable(tok)
    raise PolynomialParseError("unexpected token %r" % tok)
