"""Polynomial lowering: exact integers, shared atoms, Horner form.

The interpreted evaluator (:meth:`repro.qpoly.Polynomial.evaluate`)
walks every monomial with ``Fraction`` arithmetic.  This module lowers
a quasi-polynomial into the shape a fast evaluator wants:

* **Common-denominator scaling.**  Every coefficient is multiplied by
  the LCM of the coefficient denominators, so evaluation runs in pure
  (arbitrary-precision) integer arithmetic and divides once at the
  end.  The scaling is exact; dividing the integer total by the
  denominator reproduces the interpreted ``Fraction`` bit for bit.
* **Atom slots.**  Plain variables and mod atoms become numbered local
  slots shared by every term of a compiled sum, so ``(e mod c)`` is
  computed once per point no matter how many guarded terms mention it
  (Woods: a quasi-polynomial is a finite family of polynomials indexed
  by residue class -- the mod atom is the residue selector).
* **Horner form.**  The scaled terms are emitted as nested Horner
  chains grouped on the atom that appears in the most monomials, so a
  degree-d polynomial costs O(d) multiplications instead of O(d^2)
  exponentiations.
* **Residue specialization.**  For the table fast path,
  :func:`specialize_residue` substitutes ``var = period*t + r`` --
  every mod atom whose modulus divides ``period`` collapses to a
  constant, leaving a *plain* integer polynomial in ``t`` per residue
  class (the period-indexed table of the paper's Section 4.2.1).
"""

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.intarith import lcm_list
from repro.qpoly import ModAtom, Polynomial
from repro.qpoly.atoms import Atom, atom_sort_key

#: Internal variable name for the residue-class index ``t`` in
#: ``var = period*t + r``.  A control character keeps it out of the
#: user identifier namespace, so it can never collide with a symbol.
T_NAME = "\x03t"


def poly_denominator(poly: Polynomial) -> int:
    """LCM of the coefficient denominators (1 for integer polynomials)."""
    return lcm_list(coef.denominator for coef in poly.terms.values())


def scaled_terms(
    poly: Polynomial, scale: int
) -> Dict[Tuple[Tuple[Atom, int], ...], int]:
    """``{monomial: int(coef * scale)}`` -- exact when scale kills
    every denominator (``poly_denominator(poly) | scale``)."""
    out = {}
    for mono, coef in poly.terms.items():
        scaled = coef * scale
        if scaled.denominator != 1:
            raise ValueError(
                "scale %d does not clear denominator of %s" % (scale, coef)
            )
        out[mono] = int(scaled)
    return out


def collect_atoms(polys) -> List[Atom]:
    """Deterministically ordered union of the atoms of many polynomials."""
    seen: Dict[Atom, None] = {}
    for poly in polys:
        for atom in poly.atoms():
            seen.setdefault(atom, None)
    return sorted(seen, key=atom_sort_key)


def int_affine_src(
    pairs, const: int, names: Mapping[str, str]
) -> str:
    """Source for an integer affine expression over named locals.

    ``pairs`` is an iterable of ``(var, coef)``; ``names`` maps each
    var to its local slot name.  Constant folding keeps the emitted
    source minimal (``names`` values are plain identifiers, so the
    result needs no inner parentheses).
    """
    parts: List[str] = []
    for var, coef in pairs:
        name = names[var]
        if coef == 1:
            term = name
        elif coef == -1:
            term = "-" + name
        else:
            term = "%d*%s" % (coef, name)
        if parts and not term.startswith("-"):
            parts.append("+" + term)
        else:
            parts.append(term)
    if const or not parts:
        if parts and const > 0:
            parts.append("+%d" % const)
        else:
            parts.append(str(const))
    return "".join(parts)


def _power_src(name: str, exp: int) -> str:
    return name if exp == 1 else "%s**%d" % (name, exp)


def horner_src(
    terms: Dict[Tuple[Tuple[Atom, int], ...], int],
    slot_of: Mapping[Atom, str],
) -> str:
    """Nested-Horner source for integer-scaled terms over atom slots.

    Recursively groups on the atom occurring in the most monomials:
    ``p = ((c_k * x^(e_k - e_{k-1}) + c_{k-1}) * ... ) * x^(e_1)``
    with each coefficient ``c_i`` emitted the same way.
    """
    terms = {m: c for m, c in terms.items() if c}
    if not terms:
        return "0"
    if len(terms) == 1 and () in terms:
        return str(terms[()])
    counts: Dict[Atom, int] = {}
    for mono in terms:
        for atom, _ in mono:
            counts[atom] = counts.get(atom, 0) + 1
    pivot = max(counts, key=lambda a: (counts[a], atom_sort_key(a)))
    name = slot_of[pivot]
    by_exp: Dict[int, Dict] = {}
    for mono, coef in terms.items():
        exp = 0
        rest = []
        for atom, e in mono:
            if atom == pivot:
                exp = e
            else:
                rest.append((atom, e))
        by_exp.setdefault(exp, {})[tuple(rest)] = coef
    exps = sorted(by_exp, reverse=True)
    acc = horner_src(by_exp[exps[0]], slot_of)
    prev = exps[0]
    for exp in exps[1:]:
        coeff = horner_src(by_exp[exp], slot_of)
        acc = "(%s)*%s" % (acc, _power_src(name, prev - exp))
        if not coeff.startswith("-"):
            acc += "+" + coeff
        else:
            acc += coeff
        prev = exp
    if prev:
        acc = "(%s)*%s" % (acc, _power_src(name, prev))
    return acc


def substitute_fixed(poly: Polynomial, fixed: Mapping[str, int]) -> Polynomial:
    """Substitute integer constants for symbols (mod atoms included)."""
    for var, value in fixed.items():
        if var in poly.variables():
            poly = poly.substitute(var, Polynomial.constant(value))
    return poly


def residue_period(poly: Polynomial, var: str) -> int:
    """LCM of the mod-atom moduli mentioning ``var`` (1 when none)."""
    return lcm_list(
        atom.modulus
        for atom in poly.atoms()
        if isinstance(atom, ModAtom) and var in atom.variables()
    )


def specialize_residue(
    poly: Polynomial, var: str, period: int, residue: int, scale: int
) -> Optional[List[int]]:
    """Integer Horner coefficients of ``poly`` on ``var ≡ residue``.

    Substitutes ``var = period*t + residue``; every mod atom whose
    modulus divides ``period`` reduces to a constant, leaving a plain
    polynomial in ``t``.  Returns the coefficient list scaled by
    ``scale``, highest degree first (the dense form the bisect server
    feeds to Horner), or ``None`` if a foreign atom survives (caller
    falls back to per-point evaluation).
    """
    replacement = Polynomial.from_affine({T_NAME: period}, residue)
    specialized = poly.substitute(var, replacement)
    coeffs: Dict[int, Fraction] = {}
    for mono, coef in specialized.terms.items():
        if not mono:
            coeffs[0] = coeffs.get(0, Fraction(0)) + coef
            continue
        if len(mono) != 1 or mono[0][0] != T_NAME:
            return None
        exp = mono[0][1]
        coeffs[exp] = coeffs.get(exp, Fraction(0)) + coef
    degree = max(coeffs) if coeffs else 0
    out: List[int] = []
    for exp in range(degree, -1, -1):
        scaled = coeffs.get(exp, Fraction(0)) * scale
        if scaled.denominator != 1:
            raise ValueError(
                "scale %d does not clear residue coefficients" % scale
            )
        out.append(int(scaled))
    while len(out) > 1 and out[0] == 0:
        out.pop(0)
    return out


def horner_eval(coeffs, t: int) -> int:
    """Evaluate a dense highest-first integer coefficient list at t."""
    acc = 0
    for c in coeffs:
        acc = acc * t + c
    return acc


__all__ = [
    "T_NAME",
    "collect_atoms",
    "horner_eval",
    "horner_src",
    "int_affine_src",
    "poly_denominator",
    "residue_period",
    "scaled_terms",
    "specialize_residue",
    "substitute_fixed",
]
