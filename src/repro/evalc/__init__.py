"""Compiled evaluation of guarded quasi-polynomial answers.

``compile_sum(result) -> CompiledSum`` lowers a
:class:`~repro.core.result.SymbolicSum` into a fast reusable
evaluator: integer-scaled Horner polynomials, short-circuit guard
predicate programs, and (for one-symbol tables) a bisected threshold
index over residue classes.  Results are bit-for-bit identical to the
interpreted ``SymbolicSum.evaluate``.

See DESIGN.md ("Compiled evaluation") for the lowering pipeline.
"""

from repro.evalc.compiler import (
    CompiledSum,
    clear_cache,
    compile_enabled,
    compile_sum,
    set_compile_enabled,
)

__all__ = [
    "CompiledSum",
    "clear_cache",
    "compile_enabled",
    "compile_sum",
    "set_compile_enabled",
]
