"""Guard compilation: short-circuit predicate programs for conjuncts.

Interpreted guard evaluation (:meth:`Conjunct.is_satisfied`)
substitutes the environment into every constraint and runs the full
Omega integer satisfiability test -- hundreds of microseconds per
term per point.  Almost every answer guard is much simpler than that
machinery: plain affine checks over the symbols plus existential
wildcards that come in two shapes (PAPER.md Section 3.4):

* **stride wildcards** -- a single equality ``k*w == e`` encoding the
  divisibility ``k | e``;
* **projection wildcards** -- a variable bounded by several
  inequalities, left over from existential elimination.

Both shapes admit exact closed-form elimination for a *single*
wildcard: divisibility for the equality case, the integer interval
test ``max(ceil(lower/b)) <= min(floor(upper/a))`` for the
inequality-only case, and equality-substitution for the mixed case.
This module turns each guard into either

* a **predicate program** (:func:`guard_levels`) -- a nested chain of
  cheap integer checks for the codegen point evaluator, falling back
  to ``is_satisfied`` only for components with two or more entangled
  wildcards; or
* a **threshold interval** (:func:`guard_t_interval`) -- for the table
  fast path, the exact set of ``t`` with ``var = period*t + residue``
  satisfying the guard, as a (possibly unbounded) integer interval.
"""

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.intarith import ceil_div, floor_div
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct

from repro.evalc.lower import int_affine_src

#: A predicate level: local assignments to emit, then conditions that
#: must all hold before descending to the next level.
Level = Tuple[List[Tuple[str, str]], List[str]]


class FallbackNeeded(Exception):
    """Raised when a guard cannot be reduced exactly (table planner)."""


def wildcard_components(guard: Conjunct) -> List[List[Constraint]]:
    """Group the guard's constraints into wildcard-connected components.

    Two wildcards are connected when they co-occur in a constraint, so
    each returned component is a self-contained existential subproblem;
    constraints without wildcards are not returned (they are plain).
    """
    parent: Dict[str, str] = {w: w for w in guard.wildcards}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    members: Dict[str, List[Constraint]] = {}
    for con in guard.constraints:
        wilds = [v for v in con.variables() if v in guard.wildcards]
        for a, b in zip(wilds, wilds[1:]):
            parent[find(a)] = find(b)
    for con in guard.constraints:
        wilds = [v for v in con.variables() if v in guard.wildcards]
        if wilds:
            members.setdefault(find(wilds[0]), []).append(con)
    return [members[root] for root in sorted(members)]


def _split_wild(
    con: Constraint, wildcards
) -> Tuple[List[Tuple[str, int]], List[Tuple[str, int]], int]:
    """Partition a constraint into (wild pairs, free pairs, const)."""
    wild: List[Tuple[str, int]] = []
    free: List[Tuple[str, int]] = []
    for v, c in con.expr.coeffs:
        (wild if v in wildcards else free).append((v, c))
    return wild, free, con.expr.const


# -- predicate programs (point evaluator) --------------------------------


def guard_levels(
    guard: Conjunct,
    names: Mapping[str, str],
    prefix: str,
    fallback_idx: int,
) -> List[Level]:
    """Compile a guard into nested (assignments, conditions) levels.

    ``names`` maps every free variable to its hoisted local slot.
    Components with two or more entangled wildcards emit a call to the
    runtime helper ``_fb(fallback_idx, env)`` (exact ``is_satisfied``);
    everything else is closed-form integer arithmetic.  The levels are
    meant to be emitted as nested ``if`` blocks: conditions of level i
    guard the assignments of level i+1, giving short-circuit order
    cheap-to-expensive.
    """
    plain: List[str] = []
    levels: List[Level] = []
    tail: List[str] = []
    wilds = guard.wildcards
    for con in guard.constraints:
        if not any(v in wilds for v in con.variables()):
            src = int_affine_src(con.expr.coeffs, con.expr.const, names)
            plain.append(
                "%s == 0" % src if con.is_eq() else "%s >= 0" % src
            )
    for k, comp in enumerate(wildcard_components(guard)):
        comp_wilds = set()
        for con in comp:
            comp_wilds.update(
                v for v in con.variables() if v in wilds
            )
        if len(comp_wilds) != 1:
            tail.append("_fb(%d, env)" % fallback_idx)
            continue
        w = comp_wilds.pop()
        eqs = [c for c in comp if c.is_eq()]
        if not eqs:
            cond = _interval_cond(comp, w, wilds, names)
            if cond is not None:
                plain.append(cond)
            continue
        levels.extend(
            _eq_elim_levels(comp, eqs[0], w, wilds, names, prefix, k)
        )
    head: List[Level] = [([], plain)] if plain else []
    tail_levels: List[Level] = [([], tail)] if tail else []
    return head + levels + tail_levels


def _interval_cond(
    comp: Sequence[Constraint], w: str, wilds, names: Mapping[str, str]
) -> Optional[str]:
    """``∃w`` over inequalities only: integer interval non-emptiness.

    Each ``b*w + f >= 0`` with b > 0 lower-bounds w by ``ceil(-f/b)``
    and with b < 0 upper-bounds it by ``floor(f/|b|)``; an integer w
    exists iff every lower bound is <= every upper bound.  Returns a
    single boolean expression, or None when one side is empty (the
    component is then vacuously satisfiable).
    """
    lowers: List[str] = []
    uppers: List[str] = []
    for con in comp:
        wild, free, const = _split_wild(con, wilds)
        b = wild[0][1]
        f_src = int_affine_src(free, const, names)
        if b > 0:
            # w >= ceil(-f/b) == -floor(f/b)
            lowers.append("-((%s)//%d)" % (f_src, b))
        else:
            uppers.append("(%s)//%d" % (f_src, -b))
    if not lowers or not uppers:
        return None
    lo = lowers[0] if len(lowers) == 1 else "max(%s)" % ", ".join(lowers)
    hi = uppers[0] if len(uppers) == 1 else "min(%s)" % ", ".join(uppers)
    return "%s <= %s" % (lo, hi)


def _eq_elim_levels(
    comp: Sequence[Constraint],
    eq: Constraint,
    w: str,
    wilds,
    names: Mapping[str, str],
    prefix: str,
    comp_idx: int,
) -> List[Level]:
    """``∃w`` with an equality ``k*w + e == 0``: divisibility + substitution.

    An integer w exists for the equality iff ``|k|`` divides e; when it
    does, ``w = -e/k`` is unique, so the rest of the component is
    checked by plugging that value in.
    """
    wild, free, const = _split_wild(eq, wilds)
    k = dict(wild)[w]
    e_name = "%se%d" % (prefix, comp_idx)
    e_src = int_affine_src(free, const, names)
    rest = [c for c in comp if c is not eq]
    levels: List[Level] = []
    if abs(k) == 1:
        div_conds: List[str] = []
    else:
        div_conds = ["%s %% %d == 0" % (e_name, abs(k))]
    if not rest:
        if not div_conds:
            return []  # k = ±1: always solvable
        return [([(e_name, e_src)], div_conds)]
    levels.append(([(e_name, e_src)], div_conds))
    # w = -e/k, exact after the divisibility check.
    w_name = "%sw%d" % (prefix, comp_idx)
    if k > 0:
        w_src = "-(%s//%d)" % (e_name, k) if k != 1 else "-%s" % e_name
    else:
        w_src = "%s//%d" % (e_name, -k) if k != -1 else e_name
    sub_names = dict(names)
    sub_names[w] = w_name
    conds: List[str] = []
    for con in rest:
        src = int_affine_src(con.expr.coeffs, con.expr.const, sub_names)
        conds.append("%s == 0" % src if con.is_eq() else "%s >= 0" % src)
    levels.append(([(w_name, w_src)], conds))
    return levels


# -- threshold intervals (table planner) ---------------------------------

#: Interval in t: (lo, hi) with None meaning unbounded on that side;
#: the empty guard is returned as the sentinel EMPTY.
EMPTY = ("empty", "empty")


def _clip(interval, lo: Optional[int], hi: Optional[int]):
    cur_lo, cur_hi = interval
    if lo is not None and (cur_lo is None or lo > cur_lo):
        cur_lo = lo
    if hi is not None and (cur_hi is None or hi < cur_hi):
        cur_hi = hi
    if cur_lo is not None and cur_hi is not None and cur_lo > cur_hi:
        return EMPTY
    return (cur_lo, cur_hi)


def _linear_form(
    con: Constraint,
    var: str,
    period: int,
    residue: int,
    fixed: Mapping[str, int],
    wilds,
) -> Tuple[int, Dict[str, int], int]:
    """Rewrite a constraint under ``var = period*t + residue``.

    Returns ``(a, wcoefs, c)`` meaning ``a*t + Σ wcoefs[w]*w + c``.
    Raises FallbackNeeded when a free symbol is neither ``var`` nor
    fixed.
    """
    a = 0
    c = con.expr.const
    wcoefs: Dict[str, int] = {}
    for v, coef in con.expr.coeffs:
        if v == var:
            a += coef * period
            c += coef * residue
        elif v in wilds:
            wcoefs[v] = coef
        elif v in fixed:
            c += coef * fixed[v]
        else:
            raise FallbackNeeded("unfixed symbol %r in guard" % v)
    return a, wcoefs, c


def _plain_clip(interval, a: int, c: int, is_eq: bool):
    """Intersect with ``a*t + c >= 0`` (or ``== 0``)."""
    if is_eq:
        if a == 0:
            return interval if c == 0 else EMPTY
        if c % a:
            return EMPTY
        t0 = -(c // a)
        return _clip(interval, t0, t0)
    if a == 0:
        return interval if c >= 0 else EMPTY
    if a > 0:
        return _clip(interval, ceil_div(-c, a), None)
    return _clip(interval, None, floor_div(-c, a))


def guard_t_interval(
    guard: Conjunct,
    var: str,
    period: int,
    residue: int,
    fixed: Mapping[str, int],
):
    """Exact t-interval where the guard holds on ``var = period*t + residue``.

    Returns ``(lo, hi)`` (None = unbounded side) or the EMPTY sentinel.
    Exactness hinges on the caller choosing ``period`` divisible by
    every wildcard coefficient in the guard: then every ceil/floor of
    an affine function of t has an integer slope and each condition is
    itself affine in t.  Raises FallbackNeeded otherwise, or when a
    component entangles two or more wildcards.
    """
    interval = (None, None)
    wilds = guard.wildcards
    for con in guard.constraints:
        if any(v in wilds for v in con.variables()):
            continue
        a, _, c = _linear_form(con, var, period, residue, fixed, wilds)
        interval = _plain_clip(interval, a, c, con.is_eq())
        if interval is EMPTY:
            return EMPTY
    for comp in wildcard_components(guard):
        comp_wilds = set()
        for con in comp:
            comp_wilds.update(v for v in con.variables() if v in wilds)
        if len(comp_wilds) != 1:
            raise FallbackNeeded("entangled wildcards %s" % comp_wilds)
        w = comp_wilds.pop()
        forms = [
            (_linear_form(con, var, period, residue, fixed, wilds), con)
            for con in comp
        ]
        eqs = [(f, con) for f, con in forms if con.is_eq()]
        if eqs:
            (a, wc, c), _eq_con = eqs[0]
            k = wc[w]
            if a % k:
                raise FallbackNeeded("period does not absorb stride %d" % k)
            if c % abs(k):
                return EMPTY  # divisibility fails for the whole class
            wa, wconst = -(a // k), -(c // k)
            for (a2, wc2, c2), con in forms:
                if con is _eq_con:
                    continue
                m = wc2.get(w, 0)
                interval = _plain_clip(
                    interval, a2 + m * wa, c2 + m * wconst, con.is_eq()
                )
                if interval is EMPTY:
                    return EMPTY
            continue
        # Inequalities only: pair every lower bound with every upper.
        lowers: List[Tuple[int, int]] = []  # w >= lt*t + lc
        uppers: List[Tuple[int, int]] = []  # w <= ut*t + uc
        for (a, wc, c), _con in forms:
            b = wc[w]
            if a % abs(b):
                raise FallbackNeeded("period does not absorb bound %d" % b)
            if b > 0:  # b*w >= -(a*t + c): ceil has integer slope
                lowers.append((-(a // b), ceil_div(-c, b)))
            else:
                bb = -b
                uppers.append((a // bb, floor_div(c, bb)))
        for lt, lc in lowers:
            for ut, uc in uppers:
                interval = _plain_clip(interval, ut - lt, uc - lc, False)
                if interval is EMPTY:
                    return EMPTY
    return interval


__all__ = [
    "EMPTY",
    "FallbackNeeded",
    "guard_levels",
    "guard_t_interval",
    "wildcard_components",
]
