"""compile(sum) -> CompiledSum: fast reusable evaluators.

The point evaluator is *generated Python source*: one function per
``SymbolicSum`` that hoists every symbol lookup and shared mod atom
into a local, checks each term's guard with the closed-form predicate
program from :mod:`repro.evalc.guards`, and accumulates the term
values in common-denominator integer Horner form
(:mod:`repro.evalc.lower`).  The source is compiled once with
``exec`` and reused for every point -- the cost model is "one dict
lookup per symbol plus a handful of integer ops per term", versus the
interpreted path's per-point substitution and Omega satisfiability.

``CompiledSum.table`` adds a second tier: when the answer is piecewise
in one symbol it builds a :class:`_TablePlan` -- for each residue
class of the answer's period, a sorted list of thresholds with the
summed integer coefficient vector of the active terms between
consecutive thresholds.  Serving a point is then ``v % L`` /
``v // L``, one bisect, and one dense Horner chain: O(log #pieces +
degree), independent of the number of terms.

Compiled artifacts are cached in a bounded in-process LRU keyed by the
sum itself (or any hashable key the caller supplies -- the batch
service passes its request content hash).
"""

from bisect import bisect_right
from collections import OrderedDict
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core import stats
from repro.intarith import lcm_list
from repro.qpoly import ModAtom

from repro.evalc.guards import (
    EMPTY,
    FallbackNeeded,
    guard_levels,
    guard_t_interval,
)
from repro.evalc.lower import (
    collect_atoms,
    horner_eval,
    horner_src,
    int_affine_src,
    poly_denominator,
    residue_period,
    scaled_terms,
    specialize_residue,
    substitute_fixed,
)

#: Process-wide switch (--no-compile escape hatch, A/B benchmarks).
_COMPILE_ENABLED = True

#: Bounded LRU of compiled artifacts.
_CACHE: "OrderedDict[object, CompiledSum]" = OrderedDict()
_CACHE_LIMIT = 128

#: Residue classes beyond this make a table plan cost more to build
#: than it saves; serve such answers point-by-point instead.
_MAX_PERIOD = 720

_INDENT = "    "


def set_compile_enabled(enabled: bool) -> bool:
    """Toggle compiled evaluation globally; returns the previous state."""
    global _COMPILE_ENABLED
    previous = _COMPILE_ENABLED
    _COMPILE_ENABLED = bool(enabled)
    return previous


def compile_enabled() -> bool:
    return _COMPILE_ENABLED


def clear_cache() -> None:
    _CACHE.clear()


def _finish(acc: int, scale: int):
    """Undo the common-denominator scaling, matching the interpreted
    return convention: int when integral, Fraction otherwise."""
    if scale == 1:
        return acc
    q, r = divmod(acc, scale)
    return q if r == 0 else Fraction(acc, scale)


def generate_source(sum_) -> Tuple[str, int]:
    """Emit the point-evaluator source for a SymbolicSum.

    Returns ``(source, scale)``; the source defines ``_at(env)``
    returning the scaled integer total.  ``_fb(i, env)`` must be bound
    in the exec namespace to the exact interpreted guard test for
    term i (used only for multi-wildcard guard components).
    """
    symbols = sorted(sum_.symbols())
    names = {v: "v%d" % i for i, v in enumerate(symbols)}
    polys = [t.value for t in sum_.terms]
    scale = lcm_list(poly_denominator(p) for p in polys)
    slot_of: Dict[object, str] = dict(names)
    lines = ["def _at(env):"]
    for v in symbols:
        lines.append("%s%s = env[%r]" % (_INDENT, names[v], v))
    mod_idx = 0
    for atom in collect_atoms(polys):
        if isinstance(atom, ModAtom):
            slot = "a%d" % mod_idx
            mod_idx += 1
            slot_of[atom] = slot
            lines.append(
                "%s%s = (%s) %% %d"
                % (
                    _INDENT,
                    slot,
                    int_affine_src(atom.coeffs, atom.const, names),
                    atom.modulus,
                )
            )
    lines.append("%s_acc = 0" % _INDENT)
    for i, term in enumerate(sum_.terms):
        value_src = horner_src(scaled_terms(term.value, scale), slot_of)
        if value_src == "0":
            continue
        depth = 1
        for assigns, conds in guard_levels(
            term.guard, names, "_t%d_" % i, i
        ):
            for name, src in assigns:
                lines.append("%s%s = %s" % (_INDENT * depth, name, src))
            if conds:
                lines.append(
                    "%sif %s:" % (_INDENT * depth, " and ".join(conds))
                )
                depth += 1
        lines.append("%s_acc += %s" % (_INDENT * depth, value_src))
    lines.append("%sreturn _acc" % _INDENT)
    return "\n".join(lines) + "\n", scale


class _TablePlan:
    """Period-indexed threshold tables for one (var, fixed) slice."""

    __slots__ = ("period", "scale", "classes")

    def __init__(self, period, scale, classes):
        self.period = period
        self.scale = scale
        # classes[r] = (cuts, regions): region i covers thresholds
        # cuts[i-1] <= t < cuts[i] and holds a dense highest-first
        # integer coefficient vector.
        self.classes = classes

    def value_at(self, v: int):
        t, r = divmod(v, self.period)
        cuts, regions = self.classes[r]
        coeffs = regions[bisect_right(cuts, t)]
        return _finish(horner_eval(coeffs, t), self.scale)


def _sum_dense(vectors: List[List[int]]) -> List[int]:
    """Add dense highest-first coefficient lists (right-aligned)."""
    if not vectors:
        return [0]
    width = max(len(v) for v in vectors)
    out = [0] * width
    for vec in vectors:
        pad = width - len(vec)
        for j, c in enumerate(vec):
            out[pad + j] += c
    while len(out) > 1 and out[0] == 0:
        out.pop(0)
    return out


def _plan_period(sum_, polys_sub, var: str) -> int:
    """lcm of every modulus and wildcard coefficient the slice meets."""
    factors: List[int] = []
    for poly in polys_sub:
        factors.append(residue_period(poly, var))
    for term in sum_.terms:
        guard = term.guard
        for con in guard.constraints:
            for v, c in con.expr.coeffs:
                if v in guard.wildcards:
                    factors.append(abs(c))
    return lcm_list(factors)


def build_table_plan(sum_, var: str, fixed: Mapping[str, int]):
    """Build the threshold-table plan, or None when not applicable."""
    polys_sub = []
    for term in sum_.terms:
        for v in term.guard.free_variables():
            if v != var and v not in fixed:
                return None
        poly = substitute_fixed(term.value, dict(fixed))
        for v in poly.variables():
            if v != var:
                return None
        polys_sub.append(poly)
    period = _plan_period(sum_, polys_sub, var)
    if period > _MAX_PERIOD:
        return None
    scale = lcm_list(poly_denominator(p) for p in polys_sub)
    classes = []
    for r in range(period):
        pieces: List[Tuple[Optional[int], Optional[int], List[int]]] = []
        for term, poly in zip(sum_.terms, polys_sub):
            try:
                interval = guard_t_interval(
                    term.guard, var, period, r, fixed
                )
            except FallbackNeeded:
                return None
            if interval is EMPTY:
                continue
            coeffs = specialize_residue(poly, var, period, r, scale)
            if coeffs is None:
                return None
            if coeffs == [0]:
                continue
            pieces.append((interval[0], interval[1], coeffs))
        cut_set = set()
        for lo, hi, _ in pieces:
            if lo is not None:
                cut_set.add(lo)
            if hi is not None:
                cut_set.add(hi + 1)
        cuts = sorted(cut_set)
        regions = []
        for i in range(len(cuts) + 1):
            # Any t inside the region identifies the active pieces.
            rep = cuts[i - 1] if i else (cuts[0] - 1 if cuts else 0)
            active = [
                vec
                for lo, hi, vec in pieces
                if (lo is None or lo <= rep) and (hi is None or rep <= hi)
            ]
            regions.append(_sum_dense(active))
        classes.append((cuts, regions))
    if stats.ENABLED:
        stats.bump("evalc_table_plans")
    return _TablePlan(period, scale, classes)


class CompiledSum:
    """A SymbolicSum lowered to a reusable point/batch/table evaluator.

    Obtained from :func:`compile_sum`; evaluation results are
    bit-for-bit identical to :meth:`SymbolicSum.evaluate` (same values,
    same int-vs-Fraction types).
    """

    __slots__ = ("sum", "source", "scale", "_fn", "_plans")

    def __init__(self, sum_):
        self.sum = sum_
        self.source, self.scale = generate_source(sum_)
        guards = [t.guard for t in sum_.terms]

        def _fb(i: int, env: Mapping[str, int]) -> bool:
            if stats.ENABLED:
                stats.bump("evalc_guard_fallbacks")
            return guards[i].is_satisfied(env)

        namespace = {"_fb": _fb}
        exec(compile(self.source, "<evalc>", "exec"), namespace)
        self._fn = namespace["_at"]
        self._plans: "OrderedDict[tuple, object]" = OrderedDict()
        if stats.ENABLED:
            stats.bump("evalc_compiles")

    def at(self, env: Optional[Mapping[str, int]] = None, **kwargs: int):
        """Evaluate at one point (mapping and/or keywords)."""
        if kwargs:
            full = dict(env or {})
            full.update(kwargs)
            env = full
        return _finish(self._fn(env or {}), self.scale)

    def many(self, envs) -> List[object]:
        """Evaluate at a list of points."""
        fn = self._fn
        scale = self.scale
        return [_finish(fn(env), scale) for env in envs]

    def table(self, var: str, values, **fixed: int):
        """Tabulate along one symbol: [(value, count), ...].

        Uses the threshold-table plan when the slice admits one
        (O(log #pieces) per point); otherwise serves each point
        through the compiled evaluator.
        """
        plan = self._plan_for(var, fixed)
        if plan is not None:
            return [(v, plan.value_at(v)) for v in values]
        fn = self._fn
        scale = self.scale
        env = dict(fixed)
        out = []
        for v in values:
            env[var] = v
            out.append((v, _finish(fn(env), scale)))
        return out

    def _plan_for(self, var: str, fixed: Mapping[str, int]):
        key = (var, tuple(sorted(fixed.items())))
        if key in self._plans:
            self._plans.move_to_end(key)
            return self._plans[key]
        plan = build_table_plan(self.sum, var, fixed)
        self._plans[key] = plan  # None is cached too: "no plan" is sticky
        if len(self._plans) > 8:
            self._plans.popitem(last=False)
        return plan


def compile_sum(sum_, cache_key: Optional[object] = None) -> CompiledSum:
    """Compile a SymbolicSum, reusing the bounded in-process cache.

    ``cache_key`` defaults to the sum itself (SymbolicSum is hashable);
    the batch service passes its request content hash so repeated jobs
    share one artifact without rehashing terms.
    """
    key = sum_ if cache_key is None else cache_key
    cached = _CACHE.get(key)
    if cached is not None:
        _CACHE.move_to_end(key)
        if stats.ENABLED:
            stats.bump("evalc_cache_hits")
        return cached
    compiled = CompiledSum(sum_)
    _CACHE[key] = compiled
    if len(_CACHE) > _CACHE_LIMIT:
        _CACHE.popitem(last=False)
    return compiled


__all__ = [
    "CompiledSum",
    "build_table_plan",
    "clear_cache",
    "compile_enabled",
    "compile_sum",
    "generate_source",
    "set_compile_enabled",
]
