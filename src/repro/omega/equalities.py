"""Exact elimination of equality constraints.

Eliminating variables bound by equalities is the cheap, exact part of
the Omega test.  Two implementations live here:

* :func:`mod_hat_reduce` -- Pugh's original "mod-hat" reduction from
  the 1992 Omega test paper, kept for fidelity and tested against the
  other path.

* The **unimodular route** used by the engine: given an equality
  ``Σ aᵥ·v + rest == 0`` over eliminable variables v, compute a
  unimodular column reduction of the coefficient row (via Hermite
  normal form) so the equality becomes ``g·u₁ + rest == 0`` in fresh
  variables u with ``old = V·u`` an integer bijection.  Then u₁ either
  solves directly (g = 1) or is pinned to ``-rest/g`` with a stride
  condition (g > 1).  Both moves preserve the integer solution set up
  to an explicit affine bijection, which is what counting needs.
"""

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.intarith import IntMatrix, hermite_normal_form, sym_mod
from repro.omega import kernels
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint, fresh_var
from repro.omega.problem import Conjunct


class MixResult(NamedTuple):
    """Outcome of a unimodular change of variables.

    ``mapping`` sends each old variable to an integer affine expression
    over the fresh variables (a bijection of the integer lattice);
    ``new_vars`` lists the fresh variables in order (the equality's
    reduced variable is ``new_vars[0]``); ``pivot_coeff`` is g, the gcd
    of the old coefficients, now the coefficient of ``new_vars[0]``.
    """

    conjunct: Conjunct
    equality: Constraint
    mapping: Dict[str, Affine]
    new_vars: List[str]
    pivot_coeff: int


def unimodular_mix(
    conj: Conjunct, eq: Constraint, variables: Sequence[str]
) -> MixResult:
    """Mix ``variables`` so ``eq`` mentions only one of the new ones.

    ``variables`` must all appear in ``eq``.  Returns the transformed
    conjunct and equality plus the bijection old = V·new.
    """
    coeffs = [eq.coeff(v) for v in variables]
    if any(c == 0 for c in coeffs):
        raise ValueError("variable absent from equality")
    if len(variables) == 1:
        return MixResult(
            conj, eq, {variables[0]: Affine.var(variables[0])},
            list(variables), coeffs[0],
        )
    row = IntMatrix([coeffs])
    h, v_mat = hermite_normal_form(row)
    g = h[0, 0]
    new_vars = [fresh_var("u") for _ in variables]
    mapping: Dict[str, Affine] = {}
    for i, old in enumerate(variables):
        mapping[old] = Affine(
            {new_vars[j]: v_mat[i, j] for j in range(len(new_vars))}
        )
    new_cons = []
    new_eq = None
    for c in conj.constraints:
        updated = c
        for old, repl in mapping.items():
            updated = updated.substitute(old, repl)
        new_cons.append(updated)
        if c == eq:
            new_eq = updated
    new_conj = Conjunct(new_cons, conj.wildcards)
    if new_eq is None:
        # eq was not part of the conjunct; transform it standalone.
        new_eq = eq
        for old, repl in mapping.items():
            new_eq = new_eq.substitute(old, repl)
    assert abs(new_eq.coeff(new_vars[0])) == abs(g)
    return MixResult(new_conj, new_eq, mapping, new_vars, g)


def solve_unit(
    conj: Conjunct, eq: Constraint, var: str
) -> Tuple[Conjunct, Affine]:
    """Substitute using an equality where ``var`` has coefficient ±1.

    Returns the conjunct with the equality consumed and ``var``
    replaced everywhere by the returned affine expression.
    """
    k = eq.coeff(var)
    if abs(k) != 1:
        raise ValueError("solve_unit: %s has coefficient %d in %s" % (var, k, eq))
    rest = Affine({v: c for v, c in eq.expr.coeffs if v != var}, eq.expr.const)
    replacement = rest if k == -1 else -rest
    new = Conjunct(
        (c for c in conj.constraints if c != eq), conj.wildcards
    ).substitute(var, replacement)
    return new, replacement


def substitute_fractional(
    conj: Conjunct, var: str, numerator: Affine, denominator: int
) -> Conjunct:
    """Replace ``var`` by numerator/denominator in every constraint.

    Valid when ``denominator · var == numerator`` is known to hold:
    constraints mentioning ``var`` are scaled by the (positive)
    denominator so everything stays integral.
    """
    if denominator <= 0:
        raise ValueError("denominator must be positive")
    dense = kernels.DENSE
    new_cons = []
    for c in conj.constraints:
        a = c.coeff(var)
        if a == 0:
            new_cons.append(c)
            continue
        if dense:
            # Single merge join over the two sorted coefficient rows;
            # same expression as the dict path, no intermediates.
            expr = kernels.combine_scaled(
                c.expr, denominator, numerator, a, var
            )
        else:
            rest = Affine(
                {v: cf for v, cf in c.expr.coeffs if v != var}, c.expr.const
            )
            expr = rest * denominator + numerator * a
        new_cons.append(Constraint(expr, c.kind))
    return Conjunct(new_cons, conj.wildcards)


class WildcardElimination(NamedTuple):
    """Result of clearing wildcards out of one equality."""

    conjunct: Conjunct
    consumed: bool  # the equality is gone (or reduced to a pure stride)


def eliminate_wildcards_from_equality(
    conj: Conjunct, eq: Constraint
) -> WildcardElimination:
    """Remove an equality's wildcards, or turn it into a pure stride.

    After this call the equality either disappears (a wildcard was
    solved for) or survives as ``g·u == rest`` with ``u`` a wildcard
    appearing in no other constraint -- i.e. a stride.
    """
    wilds = [v for v in eq.variables() if v in conj.wildcards]
    if not wilds:
        raise ValueError("equality has no wildcards: %s" % eq)
    mix = unimodular_mix(conj, eq, wilds)
    conj2 = mix.conjunct.with_wildcards(mix.new_vars)
    eq2 = mix.equality
    u1 = mix.new_vars[0]
    g = abs(eq2.coeff(u1))
    rest = Affine(
        {v: c for v, c in eq2.expr.coeffs if v != u1}, eq2.expr.const
    )
    sign = 1 if eq2.coeff(u1) > 0 else -1
    # eq2: sign·g·u1 + rest == 0  =>  u1 == -sign·rest / g
    if g == 1:
        solved, _ = solve_unit(conj2, eq2, u1)
        return WildcardElimination(solved, True)
    # Pin u1 = -sign·rest/g in every *other* constraint; the equality
    # itself remains as the stride g | rest.
    others = Conjunct(
        (c for c in conj2.constraints if c != eq2), conj2.wildcards
    )
    pinned = substitute_fractional(others, u1, -rest * sign, g)
    result = Conjunct(
        tuple(pinned.constraints) + (eq2,),
        tuple(conj2.wildcards) + (u1,),
    )
    return WildcardElimination(result, True)


def eliminate_var_from_equality(
    conj: Conjunct, eq: Constraint, var: str
) -> Conjunct:
    """Eliminate ``var`` (treated existentially) using ``eq``.

    The variable is mixed with the equality's *other* eliminable
    content only implicitly: we treat ``var`` as the sole wildcard of
    interest, so the equality either solves for it or pins it
    fractionally (leaving a stride).  Helper for projection.
    """
    working = conj if var in conj.wildcards else conj.with_wildcards([var])
    k = eq.coeff(var)
    if k == 0:
        raise ValueError("%s not in %s" % (var, eq))
    if abs(k) == 1:
        solved, _ = solve_unit(working, eq, var)
        return solved
    g = abs(k)
    sign = 1 if k > 0 else -1
    rest = Affine({v: c for v, c in eq.expr.coeffs if v != var}, eq.expr.const)
    others = Conjunct((c for c in working.constraints if c != eq), working.wildcards)
    pinned = substitute_fractional(others, var, -rest * sign, g)
    return Conjunct(
        tuple(pinned.constraints) + (eq,),
        tuple(working.wildcards) + (var,),
    )


# ---------------------------------------------------------------------------
# Pugh's original mod-hat reduction, kept for fidelity (Section 2 cites
# the Omega test's equality handling).  Tested equivalent to the
# unimodular route on the cases both handle.
# ---------------------------------------------------------------------------


class EqStep(NamedTuple):
    var: str
    replacement: Affine
    sigma: Optional[str]
    conjunct: Conjunct


def mod_hat_reduce(conj: Conjunct, eq: Constraint, var: str) -> EqStep:
    """One step of Pugh's mod-hat equality reduction.

    With m = |a_k| + 1, the equality taken modulo m solves for ``var``
    with a unit coefficient in terms of the other variables and a fresh
    σ; substituting shrinks the equality's coefficients by ~2/3 per
    round (when the pivot is chosen as the globally smallest
    coefficient).
    """
    a_k = eq.coeff(var)
    if a_k == 0 or abs(a_k) == 1:
        raise ValueError("mod_hat_reduce: bad coefficient %d" % a_k)
    m = abs(a_k) + 1
    s = 1 if a_k > 0 else -1
    sigma = fresh_var("q")
    coeffs = {sigma: -m * s}
    for v, c in eq.expr.coeffs:
        if v != var:
            cm = sym_mod(c, m)
            if cm:
                coeffs[v] = coeffs.get(v, 0) + cm * s
    replacement = Affine(coeffs, s * sym_mod(eq.expr.const, m))
    new = conj.substitute(var, replacement)
    return EqStep(var, replacement, sigma, new)


def mod_hat_eliminate(conj: Conjunct, eq: Constraint) -> Conjunct:
    """Fully eliminate one equality with iterated mod-hat reductions.

    All the equality's variables are treated existentially; the pivot
    is always the variable with the smallest |coefficient| (Pugh's
    rule, which guarantees convergence).
    """
    current, current_eq = conj, eq
    for _ in range(200):
        if current_eq is None or not current_eq.expr.coeffs:
            return current
        pivot, coeff = min(
            current_eq.expr.coeffs, key=lambda vc: abs(vc[1])
        )
        if abs(coeff) == 1:
            solved, _ = solve_unit(current, current_eq, pivot)
            return solved
        step = mod_hat_reduce(current, current_eq, pivot)
        current = step.conjunct.with_wildcards([step.sigma]).normalize()
        if current is None:
            from repro.omega.affine import Affine as _A

            return Conjunct([Constraint.geq(_A.const_expr(-1))])
        current_eq = next(
            (
                c
                for c in current.constraints
                if c.is_eq() and c.uses(step.sigma)
            ),
            None,
        )
    raise RuntimeError("mod-hat elimination failed to converge")
