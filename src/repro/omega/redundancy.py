"""Redundant constraint removal and the gist operator (Section 2.3).

In normal operation the Omega test removes constraints made redundant
by a *single* other constraint (fast, incomplete -- handled by
``Conjunct.normalize``).  On request we use the complete test:
constraint c is redundant in P iff P∖{c} ∧ ¬c has no integer solution.

``gist P given Q`` returns a minimal subset G of P's constraints with
``G ∧ Q  ≡  P ∧ Q`` (what is "interesting" about P when Q is known).
"""

from typing import Iterable, List, Optional

from repro.core import stats
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.satisfiability import satisfiable


def constraint_redundant(
    conj: Conjunct, constraint: Constraint, context: Optional[Conjunct] = None
) -> bool:
    """Is ``constraint`` implied by the rest of ``conj`` (and context)?"""
    if stats.ENABLED:
        stats.bump("redundancy_checks")
    rest = Conjunct(
        (c for c in conj.constraints if c != constraint), conj.wildcards
    )
    if context is not None:
        rest = rest.merge(context)
    from repro.presburger.disjoint import negate_constraint_in

    for piece in negate_constraint_in(conj, constraint):
        if satisfiable(rest.merge(piece)):
            return False
    return True


def remove_redundant(
    conj: Conjunct, context: Optional[Conjunct] = None
) -> Conjunct:
    """Drop every GEQ constraint implied by the others (complete test).

    Equalities and strides are kept (they carry the conjunct's
    structure; the elimination machinery consumes them directly).
    An infeasible conjunct canonicalizes to :meth:`Conjunct.false`
    (``-1 >= 0``), matching :func:`gist`.
    """
    normalized = conj.normalize()
    if normalized is None:
        return Conjunct.false()
    conj = normalized
    combined = conj if context is None else conj.merge(context)
    if not satisfiable(combined):
        return Conjunct.false()
    # Try to drop the syntactically largest constraints first so the
    # kept set stays simple.
    order = sorted(
        (c for c in conj.constraints if c.is_geq()),
        key=lambda c: (-len(c.expr.coeffs), c.expr.const),
    )
    current = conj
    for c in order:
        if c not in current.constraints:
            continue
        if constraint_redundant(current, c, context):
            current = current.without_constraints([c])
    return current


def gist(p: Conjunct, q: Conjunct) -> Conjunct:
    """gist P given Q: a subset G of P's constraints with G∧Q ≡ P∧Q.

    None of the returned constraints is implied by Q together with the
    other returned constraints.  If P∧Q is infeasible the result is a
    canonical FALSE conjunct (0 >= 1).
    """
    combined = p.merge(q)
    if not satisfiable(combined):
        return Conjunct.false()
    p_n = p.normalize()
    if p_n is None:
        return Conjunct.false()
    current = p_n
    for c in sorted(
        p_n.constraints,
        key=lambda c: (not c.is_geq(), -len(c.expr.coeffs)),
    ):
        if c not in current.constraints:
            continue
        if c.is_eq() and any(
            v in current.wildcards for v in c.variables()
        ):
            continue  # keep strides intact
        if constraint_redundant(current, c, q):
            current = current.without_constraints([c])
    return current


def keep_nonredundant(
    constraints: Iterable[Constraint], wildcards: Iterable[str] = ()
) -> List[Constraint]:
    """Convenience wrapper returning the surviving constraint list."""
    return list(remove_redundant(Conjunct(constraints, wildcards)).constraints)
