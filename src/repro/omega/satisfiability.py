"""Integer satisfiability of a conjunct (Section 2.2).

The Omega test checks for integer solutions by treating every variable
as existentially quantified and eliminating variables until the problem
is trivial.  Equalities are eliminated first (exact and cheap); for
inequalities we prefer a variable whose elimination is exact, otherwise
we try the dark shadow (sufficient) and fall back to splinters
(complete).
"""

from typing import Optional

from repro.omega.problem import Conjunct
from repro.omega.equalities import mod_hat_eliminate, solve_unit
from repro.omega.eliminate import (
    dark_shadow,
    elimination_is_exact,
    real_shadow,
    splinters,
)

_MAX_DEPTH = 200

#: Fourier-Motzkin elimination can square the constraint count per
#: step; past this size a single satisfiability call would take
#: minutes, so we fail loudly instead (callers that explore hard
#: search spaces, like the 0-1 stencil encoding, catch this and fall
#: back -- exactly the "prohibitively expensive" regime §2.6 warns
#: about).
_MAX_CONSTRAINTS = 600


class SatBlowupError(RuntimeError):
    """A satisfiability subproblem exceeded the size guard."""

#: Memo for satisfiability results.  Conjuncts are immutable and
#: hashable, and guard evaluation re-solves the same ground conjuncts
#: over and over (every ``SymbolicSum.evaluate`` substitutes the same
#: guards), so this cache is a large constant-factor win.
_SAT_CACHE = {}
_SAT_CACHE_LIMIT = 200000


def satisfiable(conj: Conjunct, depth: int = 0) -> bool:
    """True iff the conjunct has an integer solution.

    All variables (free and wildcard alike) are treated as
    existentially quantified.
    """
    if depth > _MAX_DEPTH:
        raise RecursionError("satisfiability recursion too deep")
    cached = _SAT_CACHE.get(conj)
    if cached is not None:
        return cached
    result = _satisfiable_uncached(conj, depth)
    if len(_SAT_CACHE) >= _SAT_CACHE_LIMIT:
        _SAT_CACHE.clear()
    _SAT_CACHE[conj] = result
    return result


def _satisfiable_uncached(conj: Conjunct, depth: int) -> bool:
    if len(conj.constraints) > _MAX_CONSTRAINTS:
        raise SatBlowupError(
            "conjunct grew to %d constraints during elimination"
            % len(conj.constraints)
        )
    normalized = conj.normalize()
    if normalized is None:
        return False
    conj = normalized
    variables = conj.variables()
    if not variables:
        return True  # normalize() removed everything that was non-trivial

    # Equalities first: exact, never splinters.
    eqs = conj.eqs()
    if eqs:
        eq = min(eqs, key=lambda e: min(abs(c) for _, c in e.expr.coeffs))
        unit = next((v for v, c in eq.expr.coeffs if abs(c) == 1), None)
        if unit is not None:
            solved, _ = solve_unit(conj, eq, unit)
            return satisfiable(solved, depth + 1)
        return satisfiable(mod_hat_eliminate(conj, eq), depth + 1)

    # Pure inequalities: pick the variable with the cheapest elimination.
    best_var, best_cost, best_exact = None, None, False
    for var in variables:
        lowers, uppers, _ = conj.bounds_on(var)
        exact = elimination_is_exact(conj, var)
        cost = (0 if exact else 1, len(lowers) * len(uppers))
        if best_cost is None or cost < best_cost:
            best_var, best_cost, best_exact = var, cost, exact

    if best_exact:
        shadow = real_shadow(conj, best_var)
        return shadow is not None and satisfiable(shadow, depth + 1)

    dark = dark_shadow(conj, best_var)
    if dark is not None and satisfiable(dark, depth + 1):
        return True
    for sp in splinters(conj, best_var):
        if satisfiable(sp, depth + 1):
            return True
    return False


def implies(premise: Conjunct, conclusion: Conjunct) -> bool:
    """premise ⇒ conclusion, both conjuncts over shared free variables.

    Checked constraint by constraint: premise ∧ ¬c must be
    unsatisfiable for each constraint c of the conclusion.  Stride
    constraints (wildcard equalities) are checked through their
    negation as a disjunction of shifted strides.
    """
    conclusion_n = conclusion.normalize()
    if conclusion_n is None:
        return not satisfiable(premise)
    premise_n = premise.normalize()
    if premise_n is None:
        return True
    from repro.presburger.disjoint import negate_constraint_in

    for c in conclusion_n.constraints:
        for piece in negate_constraint_in(conclusion_n, c):
            if satisfiable(premise_n.merge(piece)):
                return False
    return True


def equivalent(a: Conjunct, b: Conjunct) -> bool:
    """Mutual implication of two conjuncts."""
    return implies(a, b) and implies(b, a)


def solve_sample(conj: Conjunct, box: int = 12) -> Optional[dict]:
    """Find one integer solution by bounded search (testing helper).

    Searches free variables in [-box, box]; wildcards are handled by
    the exact satisfiability test.  Returns None when no solution lies
    in the box (the conjunct may still be satisfiable outside it).
    """
    from itertools import product

    from repro.omega.affine import Affine

    free = conj.free_variables()
    for values in product(range(-box, box + 1), repeat=len(free)):
        env = dict(zip(free, values))
        reduced = conj
        for var, val in env.items():
            reduced = reduced.substitute(var, Affine.const_expr(val))
        if satisfiable(reduced):
            return env
    return None
