"""Integer satisfiability of a conjunct (Section 2.2).

The Omega test checks for integer solutions by treating every variable
as existentially quantified and eliminating variables until the problem
is trivial.  Equalities are eliminated first (exact and cheap); for
inequalities we prefer a variable whose elimination is exact, otherwise
we try the dark shadow (sufficient) and fall back to splinters
(complete).
"""

from collections import OrderedDict
from typing import Optional

from repro.core import stats
from repro.omega.problem import Conjunct
from repro.omega.equalities import mod_hat_eliminate, solve_unit
from repro.omega.eliminate import (
    dark_shadow,
    real_shadow,
    splinters,
)

_MAX_DEPTH = 200

#: Fourier-Motzkin elimination can square the constraint count per
#: step; past this size a single satisfiability call would take
#: minutes, so we fail loudly instead (callers that explore hard
#: search spaces, like the 0-1 stencil encoding, catch this and fall
#: back -- exactly the "prohibitively expensive" regime §2.6 warns
#: about).
_MAX_CONSTRAINTS = 600


class SatBlowupError(RuntimeError):
    """A satisfiability subproblem exceeded the size guard."""

#: Memo for satisfiability results.  Conjuncts are immutable and
#: hashable, and guard evaluation re-solves the same ground conjuncts
#: over and over (every ``SymbolicSum.evaluate`` substitutes the same
#: guards), so this cache is a large constant-factor win.  The memo is
#: a bounded LRU: when full, the *least recently used* entry is
#: evicted (the old behaviour -- dropping the entire cache at once --
#: made long evaluations lose their whole working set at a cliff).
_SAT_CACHE: "OrderedDict[Conjunct, bool]" = OrderedDict()
_SAT_CACHE_LIMIT = 200000


def _cache_key(conj: Conjunct) -> Conjunct:
    """Rename wildcards to canonical names for cache lookup.

    Wildcards get fresh names on every :meth:`Conjunct.merge`, so two
    structurally identical subproblems (the common case in ``implies``
    and guard evaluation) would otherwise never share a cache entry.
    Satisfiability is invariant under renaming of the existentially
    quantified wildcards, so keying on the canonical form is safe.
    Names are assigned in order of first occurrence in the constraint
    list; ``\\x00`` prefixes cannot collide with user variable names.
    """
    if not conj.wildcards:
        return conj
    mapping = {}
    wilds = conj.wildcards
    for c in conj.constraints:
        for v in c.variables():
            if v in wilds and v not in mapping:
                mapping[v] = "\x00%d" % len(mapping)
    return conj.rename(mapping)


def set_sat_cache_limit(limit: int) -> int:
    """Set the LRU capacity; returns the previous limit.

    ``0`` disables caching entirely (used by the differential tests to
    prove memoization never changes results).  Shrinking below the
    current size evicts oldest entries immediately.
    """
    global _SAT_CACHE_LIMIT
    if limit < 0:
        raise ValueError("cache limit must be >= 0")
    previous = _SAT_CACHE_LIMIT
    _SAT_CACHE_LIMIT = limit
    while len(_SAT_CACHE) > limit:
        _SAT_CACHE.popitem(last=False)
    return previous


def clear_sat_cache() -> None:
    """Drop every memoized satisfiability result."""
    _SAT_CACHE.clear()


def sat_cache_info() -> dict:
    """Current size and capacity of the satisfiability LRU."""
    return {"size": len(_SAT_CACHE), "limit": _SAT_CACHE_LIMIT}


def satisfiable(conj: Conjunct, depth: int = 0) -> bool:
    """True iff the conjunct has an integer solution.

    All variables (free and wildcard alike) are treated as
    existentially quantified.
    """
    if depth > _MAX_DEPTH:
        raise RecursionError("satisfiability recursion too deep")
    if stats.ENABLED:
        stats.bump("sat_calls")
    key = _cache_key(conj)
    cached = _SAT_CACHE.get(key)
    if cached is not None:
        _SAT_CACHE.move_to_end(key)
        if stats.ENABLED:
            stats.bump("sat_cache_hits")
        return cached
    if stats.ENABLED:
        stats.bump("sat_cache_misses")
    # Budget units measure *solver* work, so they are charged per cache
    # miss only: a fully-warm run answers every query from the memo and
    # must not burn its service budget doing zero elimination work.
    if stats.BUDGET_LIMIT is not None:
        stats.charge_budget()
    result = _satisfiable_uncached(conj, depth)
    if _SAT_CACHE_LIMIT > 0:
        _SAT_CACHE[key] = result
        if len(_SAT_CACHE) > _SAT_CACHE_LIMIT:
            _SAT_CACHE.popitem(last=False)
            if stats.ENABLED:
                stats.bump("sat_cache_evictions")
    return result


def _satisfiable_uncached(conj: Conjunct, depth: int) -> bool:
    # Normalize *before* the blowup guard: a raw conjunct of hundreds
    # of duplicate or parallel inequalities collapses to a handful of
    # rows in one linear pass, and rejecting it on the raw count would
    # turn a trivially satisfiable problem into a SatBlowupError.
    normalized = conj.normalize()
    if normalized is None:
        return False
    conj = normalized
    if len(conj.constraints) > _MAX_CONSTRAINTS:
        raise SatBlowupError(
            "conjunct grew to %d constraints during elimination"
            % len(conj.constraints)
        )
    variables = conj.variables()
    if not variables:
        return True  # normalize() removed everything that was non-trivial

    # Equalities first: exact, never splinters.
    eqs = conj.eqs()
    if eqs:
        eq = min(eqs, key=lambda e: min(abs(c) for _, c in e.expr.coeffs))
        unit = next((v for v, c in eq.expr.coeffs if abs(c) == 1), None)
        if unit is not None:
            solved, _ = solve_unit(conj, eq, unit)
            return satisfiable(solved, depth + 1)
        return satisfiable(mod_hat_eliminate(conj, eq), depth + 1)

    # Pure inequalities: pick the variable with the cheapest elimination.
    # One bounds_profiles sweep covers every variable at once (the
    # dense kernel reads the row block without materializing a single
    # bound); exactness derives from the same facts (every (lower,
    # upper) pair needs a unit coefficient, the sufficient condition
    # in elimination_is_exact).
    best_var, best_cost, best_exact = None, None, False
    profiles = conj.bounds_profiles()
    for var in variables:
        n_lowers, n_uppers, unit_lowers, unit_uppers = profiles[var]
        exact = not n_lowers or not n_uppers or unit_lowers or unit_uppers
        cost = (0 if exact else 1, n_lowers * n_uppers)
        if best_cost is None or cost < best_cost:
            best_var, best_cost, best_exact = var, cost, exact

    if best_exact:
        shadow = real_shadow(conj, best_var)
        return shadow is not None and satisfiable(shadow, depth + 1)

    dark = dark_shadow(conj, best_var)
    if dark is not None and satisfiable(dark, depth + 1):
        return True
    for sp in splinters(conj, best_var):
        if satisfiable(sp, depth + 1):
            return True
    return False


def implies(premise: Conjunct, conclusion: Conjunct) -> bool:
    """premise ⇒ conclusion, both conjuncts over shared free variables.

    Checked constraint by constraint: premise ∧ ¬c must be
    unsatisfiable for each constraint c of the conclusion.  Stride
    constraints (wildcard equalities) are checked through their
    negation as a disjunction of shifted strides.  A conclusion whose
    wildcards are not stride-only is first projected to stride-only
    pieces, which are checked as a disjunction.
    """
    conclusion_n = conclusion.normalize()
    if conclusion_n is None:
        return not satisfiable(premise)
    premise_n = premise.normalize()
    if premise_n is None:
        return True
    from repro.presburger.disjoint import (
        disjoint_negation,
        negate_constraint_in,
        project_to_stride_only,
    )

    if not conclusion_n.stride_only():
        # A wildcard pinned by a plain equality (e.g. ∃w: w = -1 ∧
        # g | x + w) survives normalize when it also feeds a stride;
        # its negation is not expressible constraint-by-constraint.
        # Project the conclusion to stride-only pieces p1 ∨ p2 ∨ ...
        # and check premise ∧ ¬p1 ∧ ¬p2 ∧ ... unsatisfiable instead.
        pieces = project_to_stride_only(conclusion_n)
        if not pieces:
            return not satisfiable(premise_n)
        residue = [premise_n]
        for piece in pieces:
            new_residue = []
            for r in residue:
                for neg in disjoint_negation(piece):
                    merged = r.merge(neg).normalize()
                    if merged is not None and satisfiable(merged):
                        new_residue.append(merged)
            residue = new_residue
            if not residue:
                return True
        return False

    for c in conclusion_n.constraints:
        for piece in negate_constraint_in(conclusion_n, c):
            if satisfiable(premise_n.merge(piece)):
                return False
    return True


def equivalent(a: Conjunct, b: Conjunct) -> bool:
    """Mutual implication of two conjuncts."""
    return implies(a, b) and implies(b, a)


def solve_sample(conj: Conjunct, box: int = 12) -> Optional[dict]:
    """Find one integer solution by bounded search (testing helper).

    Searches free variables in [-box, box]; wildcards are handled by
    the exact satisfiability test.  Returns None when no solution lies
    in the box (the conjunct may still be satisfiable outside it).
    """
    from itertools import product

    from repro.omega.affine import Affine

    free = conj.free_variables()
    for values in product(range(-box, box + 1), repeat=len(free)):
        env = dict(zip(free, values))
        reduced = conj
        for var, val in env.items():
            reduced = reduced.substitute(var, Affine.const_expr(val))
        if satisfiable(reduced):
            return env
    return None
