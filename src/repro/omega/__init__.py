"""The Omega test: integer linear constraint manipulation (Section 2).

Capabilities, mirroring the paper's Section 2:

* eliminating existentially quantified variables (projection) with
  real/dark shadows and exact splintering -- :mod:`repro.omega.eliminate`
* verifying the existence of integer solutions --
  :mod:`repro.omega.satisfiability`
* removing redundant constraints and the gist operator --
  :mod:`repro.omega.redundancy`
* verifying implications -- :mod:`repro.omega.verify`
"""

from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint, fresh_var
from repro.omega.kernels import kernels_backend, set_kernels_backend
from repro.omega.problem import Conjunct
from repro.omega.eliminate import (
    dark_shadow,
    eliminate_exact,
    eliminate_exact_disjoint,
    elimination_is_exact,
    project_onto,
    real_shadow,
    splinters,
)
from repro.omega.satisfiability import equivalent, implies, satisfiable
from repro.omega.redundancy import constraint_redundant, gist, remove_redundant

__all__ = [
    "Affine",
    "Conjunct",
    "Constraint",
    "EQ",
    "GEQ",
    "constraint_redundant",
    "dark_shadow",
    "eliminate_exact",
    "eliminate_exact_disjoint",
    "elimination_is_exact",
    "equivalent",
    "fresh_var",
    "gist",
    "implies",
    "kernels_backend",
    "project_onto",
    "set_kernels_backend",
    "real_shadow",
    "remove_redundant",
    "satisfiable",
    "splinters",
]
