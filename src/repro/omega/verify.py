"""Implication verification (Section 2.4).

``P ⇒ Q`` is checked by showing that the constraints of Q are redundant
given P -- equivalently that ``gist Q given P`` is True -- or, for
quantified formulas, that P ∧ ¬Q is unsatisfiable.
"""

from repro.omega.problem import Conjunct
from repro.omega.redundancy import gist
from repro.omega.satisfiability import implies as conjunct_implies


def verify_implication(premise: Conjunct, conclusion: Conjunct) -> bool:
    """P ⇒ Q for conjuncts, via the gist operator.

    (gist Q given P) must be trivially true; this is the paper's
    formulation.  Falls back to the satisfiability-based check when
    gist keeps constraints (gist is conservative about strides).
    """
    g = gist(conclusion, premise)
    if g.is_trivial_true():
        return True
    return conjunct_implies(premise, conclusion)


def verify_formula_implication(premise, conclusion) -> bool:
    """(∃... P) ⇒ (∃... Q) for arbitrary formulas (Section 2.4)."""
    from repro.presburger.simplify import formula_implies

    return formula_implies(premise, conclusion)
