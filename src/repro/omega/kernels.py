"""Dense integer constraint kernels for the Omega hot core.

The engine spends most of its time in ``Conjunct.normalize`` and the
Fourier-Motzkin elimination loop of ``satisfiable`` -- tiny, repeated
passes over small conjuncts.  The dict-backed :class:`~repro.omega.affine.Affine`
representation pays for that generality with object churn: every
tightening pass allocates fresh Affine/Constraint objects and hashes
tuples of ``(name, coeff)`` pairs.

This module provides a second, *dense* substrate: each conjunct gets a
per-conjunct variable index (a sorted tuple of names), and each
constraint becomes one flat row of ints

    ``(kind, const, c0, c1, ..., cn)``

with the kind bit packed into slot 0 (``0`` = GEQ ``e >= 0``, ``1`` =
EQ ``e == 0``), the constant in slot 1 and the coefficient of the
``i``-th index variable in slot ``i + 2``.  Rows are plain tuples:
hashable (so dedup is one dict operation on ints), comparable at C
speed, and cheap to combine with integer arithmetic only.

The kernels are *batched*: one pass over a row block replaces a pass
of per-constraint object rebuilding --

* :func:`normalize_rows` -- gcd-reduce + GEQ constant tightening +
  parallel/opposed-pair merging in a single sweep;
* :func:`bounds_split` / :func:`bounds_profiles` -- classify rows into
  lower/upper/rest for a column (or every column at once) without
  materializing bound expressions;
* :func:`fm_combine` -- one Fourier-Motzkin step (real or dark
  shadow) straight on the parent's row block, reusing the untouched
  rows instead of rebuilding dicts at every recursion step.

Which substrate runs is controlled by the ``REPRO_KERNELS``
environment variable (``dense``, the default, or ``dict``) or
:func:`set_kernels_backend`.  Both paths are required to produce
**byte-identical** results -- same constraints, same order, same
fresh-wildcard minting -- which the testkit's ``kernels_backend``
differential check and the CI ``kernels-smoke`` byte-diff pin down.
Invariant relied on throughout: EQ rows are sign-canonical (first
nonzero coefficient positive), exactly like :class:`Constraint`.
"""

import os
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint

#: Row-kind values (slot 0 of every row).
GEQ_ROW = 0
EQ_ROW = 1

#: A row block: (index, name -> column, rows).
Block = Tuple[Tuple[str, ...], Dict[str, int], Tuple[Tuple[int, ...], ...]]

_BACKENDS = ("dense", "dict")

#: Hot call sites read this module attribute directly (one load, like
#: ``stats.ENABLED``); keep it in sync with :func:`set_kernels_backend`.
DENSE = True


def _init_backend() -> None:
    global DENSE
    name = os.environ.get("REPRO_KERNELS", "dense")
    if name not in _BACKENDS:
        raise ValueError(
            "REPRO_KERNELS must be one of %s, got %r" % (_BACKENDS, name)
        )
    DENSE = name == "dense"


def kernels_backend() -> str:
    """The active constraint substrate: ``"dense"`` or ``"dict"``."""
    return "dense" if DENSE else "dict"


def set_kernels_backend(name: str) -> str:
    """Select the constraint substrate; returns the previous one.

    Both substrates produce byte-identical results (the differential
    tests prove it), so switching at any time is safe: cached
    normalize memos and satisfiability entries computed by the other
    backend remain valid.
    """
    global DENSE
    if name not in _BACKENDS:
        raise ValueError(
            "kernels backend must be one of %s, got %r" % (_BACKENDS, name)
        )
    previous = kernels_backend()
    DENSE = name == "dense"
    return previous


_init_backend()


# -- row block construction / materialization ---------------------------


def rows_from_constraints(constraints: Sequence[Constraint]) -> Block:
    """Build the dense row block for a constraint tuple.

    The variable index is the sorted union of the constraints'
    variables, so a row's nonzero entries read off in index order are
    already in :class:`Affine`'s canonical (name-sorted) coefficient
    order.
    """
    names = {v for c in constraints for v, _ in c.expr.coeffs}
    index = tuple(sorted(names))
    pos = {v: i + 2 for i, v in enumerate(index)}
    width = len(index) + 2
    rows: List[Tuple[int, ...]] = []
    for c in constraints:
        row = [0] * width
        if c.kind == EQ:
            row[0] = EQ_ROW
        row[1] = c.expr.const
        for v, cf in c.expr.coeffs:
            row[pos[v]] = cf
        rows.append(tuple(row))
    return index, pos, tuple(rows)


def constraint_from_row(index: Tuple[str, ...], row: Tuple[int, ...]) -> Constraint:
    """Materialize one row back into a :class:`Constraint`.

    Requires the block invariant (EQ rows sign-canonical) so the
    constructor fast path is safe.
    """
    items = tuple(
        [pair for pair in zip(index, row[2:]) if pair[1]]
    )
    expr = Affine._from_sorted(items, row[1])
    return Constraint._make(expr, EQ if row[0] else GEQ)


def row_from_affine(
    pos: Dict[str, int], width: int, expr: Affine, kind: int
) -> Tuple[int, ...]:
    """One row for an affine expression over an existing index."""
    row = [0] * width
    row[0] = kind
    row[1] = expr.const
    for v, cf in expr.coeffs:
        row[pos[v]] = cf
    return tuple(row)


# -- batched kernels ----------------------------------------------------


def normalize_rows(
    rows: Sequence[Tuple[int, ...]],
) -> Optional[Tuple[List[Tuple[int, ...]], List[Tuple[int, ...]]]]:
    """One dense canonicalization pass over a row block.

    Mirrors the first phase of the dict path's ``_normalize_once``
    exactly -- same arithmetic, same ordering:

    * constant rows are dropped (or kill the conjunct);
    * EQ rows are divided by the gcd of all entries; when the
      coefficient gcd does not divide the constant the conjunct is
      infeasible;
    * GEQ rows are tightened (coefficients divided by their gcd, the
      constant floor-divided) and parallel rows merged keeping the
      tightest constant, in first-occurrence order;
    * opposed parallel GEQ pairs become a single EQ row (emitted once,
      on the representative whose leading coefficient is positive) or
      kill the conjunct when their interval is empty.

    Returns ``None`` when infeasible, else ``(eq_rows, geq_rows)``.
    """
    eq_rows: List[Tuple[int, ...]] = []
    geq_const: Dict[Tuple[int, ...], int] = {}
    for row in rows:
        coeffs = row[2:]
        const = row[1]
        if not any(coeffs):
            if row[0]:
                if const != 0:
                    return None
            elif const < 0:
                return None
            continue  # trivially true
        if row[0]:
            gv = gcd(*coeffs)
            g = gcd(gv, const)
            if g > 1:
                const //= g
                coeffs = tuple(cf // g for cf in coeffs)
                gv //= g
            if const % gv:
                return None
            eq_rows.append((EQ_ROW, const) + coeffs)
        else:
            g = gcd(*coeffs)
            if g > 1:
                # g > 0, so Python's // is the floor division the
                # dict path spells floor_div(const, g).
                const //= g
                coeffs = tuple(cf // g for cf in coeffs)
            prev = geq_const.get(coeffs)
            if prev is None or const < prev:
                geq_const[coeffs] = const

    out_geqs: List[Tuple[int, ...]] = []
    new_eqs: List[Tuple[int, ...]] = []
    for coeffs, const in list(geq_const.items()):
        neg = tuple(-cf for cf in coeffs)
        opp = geq_const.get(neg)
        if opp is None:
            out_geqs.append((GEQ_ROW, const) + coeffs)
            continue
        # coeffs·x + const >= 0 and -coeffs·x + opp >= 0:
        # the interval -const <= coeffs·x <= opp.
        if opp < -const:
            return None
        if opp == -const:
            lead = next(cf for cf in coeffs if cf)
            if lead > 0:  # emit the pinned equality only once
                new_eqs.append((EQ_ROW, const) + coeffs)
        else:
            out_geqs.append((GEQ_ROW, const) + coeffs)
    eq_rows.extend(new_eqs)
    return eq_rows, out_geqs


def bounds_split(
    rows: Sequence[Tuple[int, ...]], col: int
) -> Tuple[
    List[Tuple[int, ...]], List[Tuple[int, ...]], List[Tuple[int, ...]]
]:
    """Classify rows by their coefficient in column ``col``.

    ``col`` is an index column (``pos[var]``).  Returns ``(lowers,
    uppers, rest)``: rows whose coefficient on the column is positive
    (lower bounds on the variable), negative (upper bounds), or zero.
    EQ rows touching the column are a caller error, exactly as in
    :meth:`Conjunct.bounds_on`.
    """
    lowers: List[Tuple[int, ...]] = []
    uppers: List[Tuple[int, ...]] = []
    rest: List[Tuple[int, ...]] = []
    for row in rows:
        k = row[col]
        if k == 0:
            rest.append(row)
        elif row[0]:
            raise ValueError(
                "bounds_split(col %d): equality row not eliminated" % col
            )
        elif k > 0:
            lowers.append(row)
        else:
            uppers.append(row)
    return lowers, uppers, rest


def bounds_profiles(
    rows: Sequence[Tuple[int, ...]], width: int
) -> List[Tuple[int, int, bool, bool]]:
    """Per-column bound profile in a single sweep over the block.

    For every index column returns ``(n_lowers, n_uppers,
    all_unit_lowers, all_unit_uppers)`` -- exactly the facts the
    satisfiability loop's variable-selection scan derives from one
    ``bounds_on`` call per variable, without materializing a single
    bound expression.  EQ rows are ignored (the caller eliminates
    equalities before scanning inequality bounds).
    """
    n_lo = [0] * width
    n_up = [0] * width
    unit_lo = [True] * width
    unit_up = [True] * width
    for row in rows:
        if row[0]:
            continue
        for col, k in enumerate(row[2:], 2):
            if k == 0:
                continue
            if k > 0:
                n_lo[col] += 1
                if k != 1:
                    unit_lo[col] = False
            else:
                n_up[col] += 1
                if k != -1:
                    unit_up[col] = False
    return [
        (n_lo[c], n_up[c], unit_lo[c], unit_up[c]) for c in range(width)
    ]


def fm_combine(
    rows: Sequence[Tuple[int, ...]], col: int, dark: bool
) -> Tuple[Tuple[Tuple[int, ...], ...], int, bool]:
    """One incremental Fourier-Motzkin step on a row block.

    Combines every lower bound ``L`` (coefficient ``b > 0`` on the
    column) with every upper bound ``U`` (coefficient ``-a``) into the
    row ``b·U + a·L`` -- the dense form of ``b·α - a·β >= 0``; the
    column's entry cancels to zero by construction.  ``dark`` subtracts
    ``(a-1)(b-1)`` from the combined constant (Pugh's dark shadow).

    Rows not mentioning the column are *reused*, not recomputed: they
    are carried into the result block unchanged.  Returns ``(new_rows,
    reused, one_sided)`` where ``reused`` counts the carried rows and
    ``one_sided`` reports that the variable was unbounded on one side
    (the result is then just the carried rows).
    """
    lowers, uppers, rest = bounds_split(rows, col)
    if not lowers or not uppers:
        return tuple(rest), len(rest), True
    out: List[Tuple[int, ...]] = list(rest)
    if dark:
        for low in lowers:
            b = low[col]
            for up in uppers:
                a = -up[col]
                row = [b * u + a * l for u, l in zip(up, low)]
                row[1] -= (a - 1) * (b - 1)
                out.append(tuple(row))
    else:
        for low in lowers:
            b = low[col]
            for up in uppers:
                a = -up[col]
                out.append(tuple([b * u + a * l for u, l in zip(up, low)]))
    return tuple(out), len(rest), False


def combine_scaled(
    expr: Affine, scale: int, addend: Affine, addend_scale: int, drop: str
) -> Affine:
    """``(expr without drop)·scale + addend·addend_scale`` in one merge.

    The dense form of the ``rest * denominator + numerator * a`` step
    in fractional substitution: both coefficient lists are name-sorted,
    so a single merge join produces the (sorted, zero-free) result
    without intermediate Affine allocations.
    """
    a_items = expr.coeffs
    b_items = addend.coeffs
    out: List[Tuple[str, int]] = []
    i = j = 0
    na, nb = len(a_items), len(b_items)
    while i < na and j < nb:
        va, ca = a_items[i]
        vb, cb = b_items[j]
        if va == vb:
            if va != drop:
                cf = ca * scale + cb * addend_scale
                if cf:
                    out.append((va, cf))
            else:
                cf = cb * addend_scale  # drop only expr's own term
                if cf:
                    out.append((va, cf))
            i += 1
            j += 1
        elif va < vb:
            if va != drop:
                cf = ca * scale
                if cf:
                    out.append((va, cf))
            i += 1
        else:
            cf = cb * addend_scale
            if cf:
                out.append((vb, cf))
            j += 1
    while i < na:
        va, ca = a_items[i]
        if va != drop:
            cf = ca * scale
            if cf:
                out.append((va, cf))
        i += 1
    while j < nb:
        vb, cb = b_items[j]
        cf = cb * addend_scale
        if cf:
            out.append((vb, cf))
        j += 1
    return Affine._from_sorted(
        tuple(out), expr.const * scale + addend.const * addend_scale
    )


__all__ = [
    "Block",
    "DENSE",
    "EQ_ROW",
    "GEQ_ROW",
    "bounds_profiles",
    "bounds_split",
    "combine_scaled",
    "constraint_from_row",
    "fm_combine",
    "kernels_backend",
    "normalize_rows",
    "row_from_affine",
    "rows_from_constraints",
    "set_kernels_backend",
]
