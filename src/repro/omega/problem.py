"""Conjuncts: conjunctions of constraints with existential wildcards.

A :class:`Conjunct` is the Omega test's unit of work: a set of GEQ/EQ
constraints over named integer variables, together with a set of
*wildcard* variables that are implicitly existentially quantified
(the "auxiliary variables" of the paper's projected format).

Stride constraints ``c | e`` are stored as ``c·w == e`` for a wildcard
``w`` that appears in no other constraint ("stride-only" wildcards);
:meth:`Conjunct.stride_view` recovers the readable form.
"""

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.core import stats
from repro.intarith import floor_div, gcd_list
from repro.omega import kernels
from repro.omega.affine import Affine
from repro.omega.constraints import EQ, GEQ, Constraint, fresh_var

#: Sentinel for "normalize() has not run yet on this instance".
_MEMO_UNSET = object()

_EMPTY_FROZENSET = frozenset()

#: Master switch for the per-instance normalize memo (the differential
#: tests turn it off to prove memoization never changes results).
_NORMALIZE_MEMO_ENABLED = True


def set_normalize_memo(enabled: bool) -> bool:
    """Enable/disable the normalize memo; returns the previous state."""
    global _NORMALIZE_MEMO_ENABLED
    previous = _NORMALIZE_MEMO_ENABLED
    _NORMALIZE_MEMO_ENABLED = bool(enabled)
    return previous


class Conjunct:
    """An immutable conjunction ``∃ wildcards . c1 ∧ c2 ∧ ...``."""

    __slots__ = ("constraints", "wildcards", "_hash", "_normalized", "_rows")

    def __init__(
        self,
        constraints: Iterable[Constraint] = (),
        wildcards: Iterable[str] = (),
    ):
        cons = tuple(dict.fromkeys(constraints))
        object.__setattr__(
            self,
            "constraints",
            cons,
        )
        wildcards = tuple(wildcards)
        if wildcards:
            used = set()
            for c in cons:
                used.update(c.variables())
            wildset = frozenset(w for w in wildcards if w in used)
        else:
            wildset = _EMPTY_FROZENSET
        object.__setattr__(self, "wildcards", wildset)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_normalized", _MEMO_UNSET)
        object.__setattr__(self, "_rows", None)

    def __setattr__(self, name, value):
        raise AttributeError("Conjunct is immutable")

    # -- basic views -----------------------------------------------------

    @classmethod
    def true(cls) -> "Conjunct":
        return cls()

    @classmethod
    def false(cls) -> "Conjunct":
        """The canonical unsatisfiable conjunct ``-1 >= 0``."""
        return cls([Constraint.geq(Affine.const_expr(-1))])

    # -- dense row block (repro.omega.kernels substrate) -----------------

    def _row_block(self) -> "kernels.Block":
        """The conjunct's dense row block, built once per instance.

        Conjuncts produced by the kernels (normalize fast path, FM
        combination) arrive with the block pre-attached, so the hot
        elimination recursion never rebuilds it from the dict-backed
        constraints.
        """
        block = self._rows
        if block is None:
            block = kernels.rows_from_constraints(self.constraints)
            object.__setattr__(self, "_rows", block)
        return block

    @classmethod
    def _from_rows(
        cls,
        index: Tuple[str, ...],
        pos: Dict[str, int],
        rows: Iterable[Tuple[int, ...]],
        wildcards: Iterable[str],
    ) -> "Conjunct":
        """Build a conjunct straight from a dense row block.

        Mirrors the constructor's constraint dedup at the row level
        (rows over a shared index map bijectively onto constraints),
        then attaches the block so downstream kernels reuse it.
        """
        rows = tuple(dict.fromkeys(rows))
        conj = cls(
            [kernels.constraint_from_row(index, row) for row in rows],
            wildcards,
        )
        object.__setattr__(conj, "_rows", (index, pos, rows))
        return conj

    @classmethod
    def _normalized_from_rows(
        cls,
        index: Tuple[str, ...],
        pos: Dict[str, int],
        rows: Iterable[Tuple[int, ...]],
    ) -> Optional["Conjunct"]:
        """Normalize a wildcard-free row block entirely at row level.

        With no wildcards the stride tail of :meth:`_finish_normalize`
        is the identity, so the whole normalize fixed point can run on
        rows and materialize constraints exactly once -- the shape of
        every Fourier-Motzkin child in the satisfiability recursion.
        Produces the same conjunct (same order, same memo state) as
        building the raw conjunct and calling :meth:`normalize`.
        """
        if stats.ENABLED:
            stats.bump("normalize_calls")
        rows = tuple(dict.fromkeys(rows))
        while True:
            if stats.ENABLED:
                stats.bump("normalize_iterations")
                stats.bump("kernel_rows_normalized", len(rows))
            reduced = kernels.normalize_rows(rows)
            if reduced is None:
                return None
            eq_rows, geq_rows = reduced
            out = tuple(dict.fromkeys(eq_rows)) + tuple(geq_rows)
            if out == rows:
                break
            rows = out
        conj = cls._from_rows(index, pos, rows, ())
        if _NORMALIZE_MEMO_ENABLED:
            object.__setattr__(conj, "_normalized", conj)
        return conj

    def variables(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for c in self.constraints:
            for v in c.variables():
                seen.setdefault(v, None)
        return tuple(seen)

    def free_variables(self) -> Tuple[str, ...]:
        return tuple(v for v in self.variables() if v not in self.wildcards)

    def geqs(self) -> List[Constraint]:
        return [c for c in self.constraints if c.is_geq()]

    def eqs(self) -> List[Constraint]:
        return [c for c in self.constraints if c.is_eq()]

    def is_trivial_true(self) -> bool:
        return not self.constraints

    def uses(self, var: str) -> bool:
        return any(c.uses(var) for c in self.constraints)

    def constraints_on(self, var: str) -> List[Constraint]:
        return [c for c in self.constraints if c.uses(var)]

    def is_stride_wildcard(self, w: str) -> bool:
        """True if w occurs in exactly one constraint and it is an EQ."""
        hits = self.constraints_on(w)
        return len(hits) == 1 and hits[0].is_eq()

    def stride_only(self) -> bool:
        """All wildcards are stride-only (answer-format conjunct)."""
        return all(self.is_stride_wildcard(w) for w in self.wildcards)

    # -- construction helpers ----------------------------------------------

    def with_constraints(self, extra: Iterable[Constraint]) -> "Conjunct":
        return Conjunct(self.constraints + tuple(extra), self.wildcards)

    def with_wildcards(self, extra: Iterable[str]) -> "Conjunct":
        return Conjunct(self.constraints, tuple(self.wildcards) + tuple(extra))

    def without_constraints(self, remove: Iterable[Constraint]) -> "Conjunct":
        removed = set(remove)
        return Conjunct(
            (c for c in self.constraints if c not in removed), self.wildcards
        )

    def add_stride(self, modulus: int, expr: Affine) -> "Conjunct":
        """Add the stride constraint ``modulus | expr``."""
        if modulus <= 0:
            raise ValueError("stride modulus must be positive")
        if modulus == 1:
            return self
        w = fresh_var("s")
        eq = Constraint.equal(Affine({w: modulus}), expr)
        return Conjunct(self.constraints + (eq,), tuple(self.wildcards) + (w,))

    def merge(self, other: "Conjunct") -> "Conjunct":
        """Conjoin two conjuncts, renaming wildcards to avoid capture."""
        if other.wildcards:
            # Renaming is only needed when a wildcard of ``other``
            # collides with a name of ``self`` (fresh_var names are
            # process-unique, so collisions only arise from shared
            # ancestry).  Skipping the rename keeps names stable,
            # which is what makes the satisfiability cache effective.
            mine = set(self.wildcards)
            for c in self.constraints:
                mine.update(c.variables())
            if not mine.isdisjoint(other.wildcards):
                other = other.rename_wildcards()
        return Conjunct(
            self.constraints + other.constraints,
            tuple(self.wildcards) + tuple(other.wildcards),
        )

    def rename_wildcards(self) -> "Conjunct":
        if not self.wildcards:
            return self
        mapping = {w: fresh_var("r") for w in self.wildcards}
        return Conjunct(
            (c.rename(mapping) for c in self.constraints), mapping.values()
        )

    def substitute(self, var: str, replacement: Affine) -> "Conjunct":
        return Conjunct(
            (
                c.substitute(var, replacement) if c.uses(var) else c
                for c in self.constraints
            ),
            self.wildcards,
        )

    def rename(self, mapping: Mapping[str, str]) -> "Conjunct":
        return Conjunct(
            (c.rename(mapping) for c in self.constraints),
            (mapping.get(w, w) for w in self.wildcards),
        )

    # -- normalization ------------------------------------------------------

    def normalize(self) -> Optional["Conjunct"]:
        """Canonicalize; return None when trivially unsatisfiable.

        * GEQs are tightened: ``Σ a·x + c >= 0`` with g = gcd(a) becomes
          ``Σ (a/g)·x + floor(c/g) >= 0`` (integer points preserved).
        * EQs are divided by the gcd of all coefficients; when the gcd of
          the variable coefficients does not divide the constant the
          conjunct is infeasible.
        * EQs whose only variables are stride wildcards are rewritten as
          a single canonical stride (coefficients reduced mod the
          stride); a stride of 1 disappears.
        * Parallel GEQs are merged (tightest kept); opposed parallel
          GEQs that pin an expression to a point become an EQ, and an
          empty interval kills the conjunct.

        The result is memoized on the instance (conjuncts are
        immutable, and every ``_sum`` recursion step, ``satisfiable``
        call and redundancy test re-normalizes the conjuncts it is
        handed).  The fixed point is reached by iteration, not
        recursion, so adversarial chains -- e.g. wildcard equalities
        that each become eliminable only after the previous one is
        dropped -- cannot exhaust the interpreter stack.
        """
        if stats.ENABLED:
            stats.bump("normalize_calls")
        if _NORMALIZE_MEMO_ENABLED and self._normalized is not _MEMO_UNSET:
            if stats.ENABLED:
                stats.bump("normalize_memo_hits")
            return self._normalized
        chain: List["Conjunct"] = []
        current = self
        while True:
            if stats.ENABLED:
                stats.bump("normalize_iterations")
            step = current._normalize_once()
            if step is None:
                result = None
                break
            if (
                step.constraints == current.constraints
                and step.wildcards == current.wildcards
            ):
                result = step
                break
            if _NORMALIZE_MEMO_ENABLED and step._normalized is not _MEMO_UNSET:
                result = step._normalized
                break
            chain.append(step)
            current = step
        if _NORMALIZE_MEMO_ENABLED:
            object.__setattr__(self, "_normalized", result)
            for link in chain:
                object.__setattr__(link, "_normalized", result)
            if result is not None:
                object.__setattr__(result, "_normalized", result)
        return result

    def _normalize_once(self) -> Optional["Conjunct"]:
        """One canonicalization pass (see :meth:`normalize`).

        Dispatches on the active kernels backend: the dense path runs
        the scale/tighten/merge sweep on the conjunct's row block
        (:func:`repro.omega.kernels.normalize_rows`), the dict path on
        the Affine-backed constraints.  Both produce byte-identical
        results; the stride canonicalization tail is shared.
        """
        if kernels.DENSE:
            return self._normalize_once_dense()
        return self._normalize_once_dict()

    def _normalize_once_dense(self) -> Optional["Conjunct"]:
        index, pos, rows = self._row_block()
        if stats.ENABLED:
            stats.bump("kernel_rows_normalized", len(rows))
        reduced = kernels.normalize_rows(rows)
        if reduced is None:
            return None
        eq_rows, geq_rows = reduced
        if not eq_rows and not self.wildcards:
            # Pure-inequality conjunct: the stride tail is a no-op, so
            # the result comes straight off the rows -- the hot case in
            # the Fourier-Motzkin recursion.
            out = tuple(geq_rows)
            if out == rows:
                return self  # fixed point, nothing to rebuild
            return Conjunct._from_rows(index, pos, out, ())
        eqs = [kernels.constraint_from_row(index, row) for row in eq_rows]
        out_geqs = [
            kernels.constraint_from_row(index, row) for row in geq_rows
        ]
        return self._finish_normalize(eqs, out_geqs)

    def _normalize_once_dict(self) -> Optional["Conjunct"]:
        geqs: Dict[Tuple, Constraint] = {}
        eqs: List[Constraint] = []
        for c in self.constraints:
            if c.is_trivial_true():
                continue
            if c.is_trivial_false():
                return None
            expr = c.expr
            if c.is_eq():
                g = gcd_list([cf for _, cf in expr.coeffs] + [expr.const])
                if g > 1:
                    expr = expr.exact_div(g)
                gv = expr.content()
                if gv and expr.const % gv:
                    return None
                eqs.append(Constraint.eq(expr))
            else:
                g = expr.content()
                if g > 1:
                    expr = Affine(
                        {v: cf // g for v, cf in expr.coeffs},
                        floor_div(expr.const, g),
                    )
                key = expr.coeffs
                prev = geqs.get(key)
                if prev is None or expr.const < prev.expr.const:
                    geqs[key] = Constraint.geq(expr)

        # Opposed parallel inequality pairs.
        out_geqs: List[Constraint] = []
        new_eqs: List[Constraint] = []
        for key, c in list(geqs.items()):
            neg_key = tuple((v, -cf) for v, cf in key)
            opp = geqs.get(neg_key)
            if opp is None:
                out_geqs.append(c)
                continue
            # c: e + c1 >= 0, opp: -e + c2 >= 0  =>  -c1 <= e <= c2
            c1, c2 = c.expr.const, opp.expr.const
            if c2 < -c1:
                return None
            if c2 == -c1:
                if key and key[0][1] > 0:  # emit the equality only once
                    new_eqs.append(Constraint.eq(c.expr))
            else:
                out_geqs.append(c)

        eqs.extend(new_eqs)
        return self._finish_normalize(eqs, out_geqs)

    def _finish_normalize(
        self, eqs: List[Constraint], out_geqs: List[Constraint]
    ) -> Optional["Conjunct"]:
        """Shared normalization tail: canonicalize stride equalities.

        Runs on materialized constraints under both kernels backends
        (stride handling is name- and wildcard-centric, and it is the
        only part of normalization that mints fresh variables -- keeping
        it shared keeps the minting order, and therefore the output,
        byte-identical between backends).
        """
        stride_eqs: List[Constraint] = []
        stride_seen: Dict[Tuple, str] = {}
        wildcards = set(self.wildcards)
        plain_eqs: List[Constraint] = []
        occurrences: Dict[str, int] = {}
        for c in eqs + out_geqs:
            for v in c.variables():
                occurrences[v] = occurrences.get(v, 0) + 1
        for c in dict.fromkeys(eqs):
            lone = [
                (v, cf)
                for v, cf in c.expr.coeffs
                if v in wildcards and occurrences.get(v) == 1
            ]
            if not lone:
                plain_eqs.append(c)
                continue
            g = gcd_list(cf for _, cf in lone)
            rest = Affine(
                {v: cf for v, cf in c.expr.coeffs if (v, cf) not in lone},
                c.expr.const,
            )
            if g == 1:
                for v, _ in lone:
                    wildcards.discard(v)
                continue  # ∃w: g·w == rest is always solvable
            # The stride is determined by g and the residue class of
            # ``rest`` up to sign; pick the lexicographically smaller of
            # the two reduced representatives so normalization is a
            # fixed point (see tests: strides must not oscillate).
            r0 = Affine({v: cf % g for v, cf in rest.coeffs}, rest.const % g)
            r1 = Affine(
                {v: (-cf) % g for v, cf in rest.coeffs}, (-rest.const) % g
            )
            reduced = min(r0, r1, key=lambda a: (a.coeffs, a.const))
            if reduced.is_constant():
                for v, _ in lone:
                    wildcards.discard(v)
                if reduced.const % g:
                    return None
                continue
            # Reuse the existing wildcard when the constraint is already
            # canonical (otherwise normalize would never reach a fixed
            # point, minting a fresh name each pass).
            key = (g, reduced)
            if key in stride_seen:  # duplicate stride: drop this copy
                for v, _ in lone:
                    wildcards.discard(v)
                continue
            w_old = lone[0][0]
            canonical = Constraint.equal(Affine({w_old: g}), reduced)
            if len(lone) == 1 and c == canonical:
                stride_seen[key] = w_old
                stride_eqs.append(c)
                continue
            for v, _ in lone:
                wildcards.discard(v)
            w = fresh_var("s")
            wildcards.add(w)
            stride_seen[key] = w
            stride_eqs.append(Constraint.equal(Affine({w: g}), reduced))

        return Conjunct(plain_eqs + stride_eqs + out_geqs, wildcards)

    # -- bounds ------------------------------------------------------------

    def bounds_on(self, var: str):
        """Split the GEQ constraints into bounds on ``var``.

        Returns ``(lowers, uppers, rest)`` where ``lowers`` is a list of
        ``(b, β)`` meaning β <= b·var (b > 0), ``uppers`` a list of
        ``(a, α)`` meaning a·var <= α (a > 0), and ``rest`` the
        constraints not mentioning ``var``.  Equalities mentioning
        ``var`` are a caller error (eliminate them first).
        """
        if kernels.DENSE and self._rows is not None:
            return self._bounds_on_dense(var)
        lowers: List[Tuple[int, Affine]] = []
        uppers: List[Tuple[int, Affine]] = []
        rest: List[Constraint] = []
        for c in self.constraints:
            k = c.coeff(var)
            if k == 0:
                rest.append(c)
                continue
            if c.is_eq():
                raise ValueError(
                    "bounds_on(%s): equality %s not eliminated" % (var, c)
                )
            other = Affine(
                {v: cf for v, cf in c.expr.coeffs if v != var}, c.expr.const
            )
            if k > 0:  # k·var + other >= 0  =>  -other <= k·var
                lowers.append((k, -other))
            else:  # other >= -k·var = |k|·var
                uppers.append((-k, other))
        return lowers, uppers, rest

    def _bounds_on_dense(self, var: str):
        """Row-block implementation of :meth:`bounds_on`.

        Classifies on the cached rows (one int load per row) and
        materializes the bound expressions only for the rows that
        actually bound ``var``.
        """
        index, pos, rows = self._row_block()
        col = pos.get(var)
        if col is None:
            return [], [], list(self.constraints)
        lowers: List[Tuple[int, Affine]] = []
        uppers: List[Tuple[int, Affine]] = []
        rest: List[Constraint] = []
        for i, row in enumerate(rows):
            k = row[col]
            if k == 0:
                rest.append(self.constraints[i])
                continue
            if row[0]:
                raise ValueError(
                    "bounds_on(%s): equality %s not eliminated"
                    % (var, self.constraints[i])
                )
            if k > 0:  # beta <= k·var with beta = -(row minus the column)
                beta = Affine._from_sorted(
                    tuple(
                        (index[j - 2], -row[j])
                        for j in range(2, len(row))
                        if row[j] and j != col
                    ),
                    -row[1],
                )
                lowers.append((k, beta))
            else:  # |k|·var <= alpha with alpha = row minus the column
                alpha = Affine._from_sorted(
                    tuple(
                        (index[j - 2], row[j])
                        for j in range(2, len(row))
                        if row[j] and j != col
                    ),
                    row[1],
                )
                uppers.append((-k, alpha))
        return lowers, uppers, rest

    def bounds_profiles(self) -> Dict[str, Tuple[int, int, bool, bool]]:
        """Bound profile of every variable in one pass.

        Maps each variable to ``(n_lowers, n_uppers, all_unit_lowers,
        all_unit_uppers)`` over the GEQ constraints -- the facts the
        satisfiability loop needs to pick its elimination variable.
        Under the dense backend this is a single sweep of the row
        block; the dict path derives the same facts per variable from
        :meth:`bounds_on`.
        """
        if kernels.DENSE:
            index, pos, rows = self._row_block()
            profiles = kernels.bounds_profiles(rows, len(index) + 2)
            return {v: profiles[pos[v]] for v in index}
        out: Dict[str, List] = {
            v: [0, 0, True, True] for v in self.variables()
        }
        for c in self.constraints:
            if c.is_eq():
                continue
            for v, cf in c.expr.coeffs:
                profile = out[v]
                if cf > 0:
                    profile[0] += 1
                    if cf != 1:
                        profile[2] = False
                else:
                    profile[1] += 1
                    if cf != -1:
                        profile[3] = False
        return {v: tuple(p) for v, p in out.items()}

    # -- evaluation -----------------------------------------------------------

    def satisfied_by(self, env: Mapping[str, int]) -> bool:
        """Truth under a *complete* assignment (wildcards included)."""
        return all(c.satisfied(env) for c in self.constraints)

    def is_satisfied(self, env: Mapping[str, int]) -> bool:
        """Truth under an assignment of the free variables.

        Wildcards are existentially quantified: we substitute the given
        values and run the exact integer satisfiability test on what
        remains.
        """
        from repro.omega.satisfiability import satisfiable

        conj = self
        for var, value in env.items():
            if conj.uses(var):
                conj = conj.substitute(var, Affine.const_expr(value))
        leftover = [v for v in conj.variables() if v not in self.wildcards]
        if leftover:
            raise ValueError("unassigned free variables: %s" % (leftover,))
        return satisfiable(conj)

    # -- display ------------------------------------------------------------

    def stride_view(self) -> Tuple[List[Constraint], List[Tuple[int, Affine]]]:
        """Separate ordinary constraints from printable strides.

        Returns (other_constraints, strides) where each stride is
        ``(c, e)`` meaning ``c | e``.
        """
        others: List[Constraint] = []
        strides: List[Tuple[int, Affine]] = []
        for c in self.constraints:
            if c.is_eq():
                lone = [
                    v
                    for v in c.variables()
                    if v in self.wildcards and self.is_stride_wildcard(v)
                ]
                if len(lone) == 1:
                    w = lone[0]
                    k = c.coeff(w)
                    rest = Affine(
                        {v: cf for v, cf in c.expr.coeffs if v != w},
                        c.expr.const,
                    )
                    strides.append((abs(k), -rest if k > 0 else rest))
                    continue
            others.append(c)
        return others, strides

    def __str__(self) -> str:
        others, strides = self.stride_view()
        parts = [str(c) for c in others]
        parts.extend("%d | (%s)" % (m, e) for m, e in strides)
        body = " and ".join(parts) if parts else "TRUE"
        hidden = [
            w
            for w in self.wildcards
            if not self.is_stride_wildcard(w) and self.uses(w)
        ]
        if hidden:
            return "exists %s: %s" % (", ".join(sorted(hidden)), body)
        return body

    def __repr__(self) -> str:
        return "Conjunct(%s)" % self

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Conjunct)
            and self.constraints == other.constraints
            and self.wildcards == other.wildcards
        )

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(
                self, "_hash", hash((self.constraints, self.wildcards))
            )
        return self._hash


FALSE_CONJUNCTS: Tuple[Conjunct, ...] = ()
