"""Variable elimination: shadows and splintering (Omega test core).

Eliminating an existentially quantified integer variable from a
conjunct of inequalities ("shadow-casting / projection", Section 2.1).

* The **real shadow** combines every lower bound β <= b·z with every
  upper bound a·z <= α into a·β <= b·α: the exact projection over the
  rationals, an over-approximation over the integers.
* The **dark shadow** uses a·β + (a-1)(b-1) <= b·α: any integer point
  of the dark shadow has an integer z above it (an under-approximation).
* When some pair has (a-1)(b-1) > 0 the exact projection is the dark
  shadow plus **splinters**: copies of the problem with an added
  equality ``b·z == β + i``, which eliminate z exactly via the equality
  machinery (Section 5.2, Figure 1).

``eliminate_exact`` returns possibly-overlapping pieces (the paper's
standard algorithm); ``eliminate_exact_disjoint`` returns disjoint
pieces (Figure 1's variant), which is what counting needs.
"""

from typing import List, Optional, Tuple

from repro.core import stats
from repro.intarith import floor_div
from repro.omega import kernels
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.problem import Conjunct
from repro.omega.equalities import eliminate_var_from_equality


class SplinterError(RuntimeError):
    """Raised when exact disjoint elimination exceeds its work budget."""


def _shadow(conj: Conjunct, var: str, dark: bool) -> Optional[Conjunct]:
    if stats.ENABLED:
        stats.bump("fm_eliminations")
    if kernels.DENSE:
        return _shadow_dense(conj, var, dark)
    lowers, uppers, rest = conj.bounds_on(var)
    if not lowers or not uppers:
        # Unbounded on one side: ∃z always solvable once the other
        # constraints hold.
        return Conjunct(rest, conj.wildcards).normalize()
    new = list(rest)
    for b, beta in lowers:
        for a, alpha in uppers:
            expr = alpha * b - beta * a
            if dark:
                expr = expr - (a - 1) * (b - 1)
            new.append(Constraint.geq(expr))
    return Conjunct(new, conj.wildcards).normalize()


def _shadow_dense(conj: Conjunct, var: str, dark: bool) -> Optional[Conjunct]:
    """Shadow projection on the parent conjunct's row block.

    The incremental FM step: rows not mentioning ``var`` are carried
    into the child block unchanged (counted as ``fm_rows_reused``),
    bound pairs are combined with pure integer arithmetic, and the
    child conjunct is built with its block pre-attached so the
    recursion's next normalize/eliminate step starts from rows too.
    """
    index, pos, rows = conj._row_block()
    col = pos.get(var)
    if col is None:
        # Variable absent: ∃z trivially solvable, everything is "rest".
        return conj.normalize()
    new_rows, reused, _ = kernels.fm_combine(rows, col, dark)
    if stats.ENABLED and reused:
        stats.bump("fm_rows_reused", reused)
    if not conj.wildcards:
        # The common FM-recursion shape: no wildcards means the stride
        # tail is a no-op, so the child normalizes at row level and
        # materializes constraints exactly once.
        return Conjunct._normalized_from_rows(index, pos, new_rows)
    return Conjunct._from_rows(
        index, pos, new_rows, conj.wildcards
    ).normalize()


def real_shadow(conj: Conjunct, var: str) -> Optional[Conjunct]:
    """Rational (Fourier) projection; integer over-approximation."""
    return _shadow(conj, var, dark=False)


def dark_shadow(conj: Conjunct, var: str) -> Optional[Conjunct]:
    """Pugh's dark shadow; integer under-approximation."""
    return _shadow(conj, var, dark=True)


def elimination_is_exact(conj: Conjunct, var: str) -> bool:
    """True when the real shadow equals the exact integer projection.

    Sufficient condition from the paper: every (lower, upper) bound
    pair has (a-1)(b-1) == 0, i.e. at least one unit coefficient.
    """
    lowers, uppers, _ = conj.bounds_on(var)
    if not lowers or not uppers:
        return True
    if all(b == 1 for b, _ in lowers):
        return True
    return all(a == 1 for a, _ in uppers)


def splinters(conj: Conjunct, var: str) -> List[Conjunct]:
    """The splinter problems that catch solutions outside the dark shadow.

    Per Pugh 1992: with a_max the largest upper-bound coefficient on
    ``var``, any integer solution not covered by the dark shadow
    satisfies, for some lower bound β <= b·var,

        b·var == β + i   for some 0 <= i <= (a_max·b - a_max - b)/a_max.

    Each returned conjunct retains ``var`` but pins it with an equality.
    """
    lowers, uppers, _ = conj.bounds_on(var)
    if not lowers or not uppers:
        return []
    a_max = max(a for a, _ in uppers)
    out: List[Conjunct] = []
    for b, beta in lowers:
        if b == 1:
            continue  # unit lower bounds never splinter
        top = floor_div(a_max * b - a_max - b, a_max)
        for i in range(top + 1):
            eq = Constraint.equal(Affine({var: b}), beta + i)
            out.append(conj.with_constraints([eq]))
    if stats.ENABLED and out:
        stats.bump("splinters_taken", len(out))
    return out


def eliminate_exact(conj: Conjunct, var: str) -> List[Conjunct]:
    """Exact projection of ``var``: dark shadow plus resolved splinters.

    The returned pieces no longer mention ``var`` but may overlap; their
    union is exactly ``∃ var . conj``.  Splinter pieces are resolved by
    the equality machinery, which may add fresh wildcards.

    Decompositions are memoized through the answer memo (mode
    ``elim``): splinter-heavy projections recur on structurally
    identical subproblems, and a piece-level hit skips the shadow,
    splinter and equality machinery wholesale.
    """
    from repro.core import memo

    if not memo.answer_memo_enabled():
        return _eliminate_exact_inner(conj, var)
    key, names, back = memo.piece_key(conj, var, "elim")
    hit = memo.fetch_pieces(key, back)
    if hit is not None:
        return hit
    pieces = _eliminate_exact_inner(conj, var)
    memo.store_pieces(key, names, pieces)
    return pieces


def _eliminate_exact_inner(conj: Conjunct, var: str) -> List[Conjunct]:
    conj2 = conj.normalize()
    if conj2 is None:
        return []
    conj = conj2
    if not conj.uses(var):
        return [conj]
    eq = next((c for c in conj.constraints if c.is_eq() and c.uses(var)), None)
    if eq is not None:
        return _eliminate_via_equality(conj, var)
    if elimination_is_exact(conj, var):
        shadow = real_shadow(conj, var)
        return [shadow] if shadow is not None else []
    pieces: List[Conjunct] = []
    dark = dark_shadow(conj, var)
    if dark is not None:
        pieces.append(dark)
    for sp in splinters(conj, var):
        pieces.extend(_eliminate_via_equality(sp, var))
    return pieces


def _eliminate_via_equality(conj: Conjunct, var: str) -> List[Conjunct]:
    """Eliminate ``var``, which occurs in an equality, as a wildcard."""
    working = conj.with_wildcards([var])
    final = eliminate_var_from_equality(working, _eq_with(working, var), var)
    final = final.normalize()
    return [final] if final is not None else []


def _eq_with(conj: Conjunct, var: str) -> Constraint:
    for c in conj.constraints:
        if c.is_eq() and c.uses(var):
            return c
    raise ValueError("no equality with %s" % var)


def eliminate_exact_disjoint(
    conj: Conjunct, var: str, budget: int = 2000
) -> List[Conjunct]:
    """Exact projection of ``var`` into *disjoint* pieces (Figure 1).

    Strategy: take the exact (possibly overlapping) pieces, then make
    them disjoint with the Section 5.3 conversion.  Pieces whose
    wildcards cannot be put in stride-only form are themselves
    recursively projected first.

    Memoized like :func:`eliminate_exact` (mode ``elimdisj:<budget>``
    -- the budget caps how hard disjointification may work, so runs
    with different budgets must not share entries).
    """
    from repro.core import memo

    if not memo.answer_memo_enabled():
        return _eliminate_exact_disjoint_inner(conj, var, budget)
    key, names, back = memo.piece_key(conj, var, "elimdisj:%d" % budget)
    hit = memo.fetch_pieces(key, back)
    if hit is not None:
        return hit
    pieces = _eliminate_exact_disjoint_inner(conj, var, budget)
    memo.store_pieces(key, names, pieces)
    return pieces


def _eliminate_exact_disjoint_inner(
    conj: Conjunct, var: str, budget: int
) -> List[Conjunct]:
    from repro.presburger.disjoint import disjointify

    pieces = eliminate_exact(conj, var)
    if len(pieces) <= 1:
        return pieces
    return disjointify(pieces, budget=budget)


def project_onto(
    conj: Conjunct, keep: Tuple[str, ...], disjoint: bool = False
) -> List[Conjunct]:
    """Project a conjunct onto the ``keep`` variables.

    Every other free variable is existentially quantified and
    eliminated exactly.  Returns a list of conjuncts (a disjunction);
    with ``disjoint=True`` the pieces are pairwise disjoint.
    """
    keep_set = set(keep)
    pieces = [conj]
    while True:
        target = None
        for piece in pieces:
            for v in piece.free_variables():
                if v not in keep_set:
                    target = v
                    break
            if target:
                break
        if target is None:
            break
        new_pieces: List[Conjunct] = []
        for piece in pieces:
            if piece.uses(target) and target not in piece.wildcards:
                new_pieces.extend(eliminate_exact(piece, target))
            else:
                new_pieces.append(piece)
        pieces = new_pieces
    # Wildcards that ended up free of their conjuncts disappear on
    # normalize; nothing else to do.
    normalized = [p for p in (q.normalize() for q in pieces) if p is not None]
    if disjoint and len(normalized) > 1:
        from repro.presburger.disjoint import disjointify

        return disjointify(normalized)
    return normalized
