"""Linear constraints over integer variables.

Two kinds of atomic constraints, as in the Omega test:

* ``GEQ``:  e >= 0
* ``EQ``:   e == 0

Stride constraints ``c | e`` ("c evenly divides e", Section 3.2) are
represented in *projected format* -- ``e == c·α`` for a fresh
existentially quantified wildcard α -- which the paper notes "works
better for the purposes of this paper".  The conversion happens when a
formula atom is lowered into a conjunct (see
:mod:`repro.presburger.atoms` and :class:`repro.omega.problem.Conjunct`).
"""

import itertools
from typing import Mapping

from repro.omega.affine import Affine

GEQ = "geq"
EQ = "eq"

_fresh_counter = itertools.count(1)


def fresh_var(prefix: str = "w") -> str:
    """A globally fresh variable name (used for wildcards)."""
    return "_%s%d" % (prefix, next(_fresh_counter))


def reset_fresh_counter(start: int = 1) -> None:
    """Restart the fresh-name counter (test hook).

    Wildcard names otherwise depend on how many conjuncts were built
    since the process started, which makes golden-string assertions
    (and anything keyed on printed guards) depend on test order.  The
    test suite resets the counter before every test.  Safe at any
    time: satisfiability and normalization are pure functions of a
    conjunct's *content*, so a name collision between unrelated
    conjuncts cannot change any cached answer.
    """
    global _fresh_counter
    _fresh_counter = itertools.count(start)


class Constraint:
    """An immutable atomic constraint ``affine >= 0`` or ``affine == 0``."""

    __slots__ = ("expr", "kind", "_hash")

    def __init__(self, expr: Affine, kind: str):
        if kind not in (GEQ, EQ):
            raise ValueError("unknown constraint kind %r" % kind)
        if kind == EQ:
            # Canonical sign for equalities: first nonzero coefficient
            # positive (or positive constant when no variables).
            lead = expr.coeffs[0][1] if expr.coeffs else expr.const
            if lead < 0:
                expr = -expr
        object.__setattr__(self, "expr", expr)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("Constraint is immutable")

    # -- constructors -------------------------------------------------

    @classmethod
    def _make(cls, expr: Affine, kind: str) -> "Constraint":
        """Construct from an already-canonical expression.

        Internal fast path for the dense kernels: EQ rows in a row
        block are sign-canonical by invariant, so the constructor's
        leading-sign flip (and its kind check) can be skipped.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "expr", expr)
        object.__setattr__(obj, "kind", kind)
        object.__setattr__(obj, "_hash", None)
        return obj

    @classmethod
    def geq(cls, expr: Affine) -> "Constraint":
        """expr >= 0"""
        return cls(expr, GEQ)

    @classmethod
    def leq(cls, lhs: Affine, rhs: Affine) -> "Constraint":
        """lhs <= rhs"""
        return cls(rhs - lhs, GEQ)

    @classmethod
    def eq(cls, expr: Affine) -> "Constraint":
        """expr == 0"""
        return cls(expr, EQ)

    @classmethod
    def equal(cls, lhs: Affine, rhs: Affine) -> "Constraint":
        """lhs == rhs"""
        return cls(lhs - rhs, EQ)

    # -- queries ---------------------------------------------------------

    def is_geq(self) -> bool:
        return self.kind == GEQ

    def is_eq(self) -> bool:
        return self.kind == EQ

    def variables(self):
        return self.expr.variables()

    def uses(self, var: str) -> bool:
        return self.expr.uses(var)

    def coeff(self, var: str) -> int:
        return self.expr.coeff(var)

    def is_trivial_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        if self.kind == GEQ:
            return self.expr.const >= 0
        return self.expr.const == 0

    def is_trivial_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        if self.kind == GEQ:
            return self.expr.const < 0
        return self.expr.const != 0

    # -- transforms ---------------------------------------------------------

    def substitute(self, var: str, replacement: Affine) -> "Constraint":
        return Constraint(self.expr.substitute(var, replacement), self.kind)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.kind)

    def negate_geq(self) -> "Constraint":
        """¬(e >= 0)  ==  -e - 1 >= 0 (only valid for GEQ constraints)."""
        if self.kind != GEQ:
            raise ValueError("negate_geq on an equality")
        return Constraint(-self.expr - 1, GEQ)

    # -- evaluation ----------------------------------------------------------

    def satisfied(self, env: Mapping[str, int]) -> bool:
        value = self.expr.evaluate(env)
        return value >= 0 if self.kind == GEQ else value == 0

    # -- identity --------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Constraint)
            and self.kind == other.kind
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.expr, self.kind))
            object.__setattr__(self, "_hash", h)
        return h

    def __str__(self) -> str:
        op = ">=" if self.kind == GEQ else "="
        return "%s %s 0" % (self.expr, op)

    def __repr__(self) -> str:
        return "Constraint(%s)" % self
