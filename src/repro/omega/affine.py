"""Integer affine expressions.

An :class:`Affine` is ``sum(coef * var) + const`` with integer
coefficients.  It is the building block of every Omega-test constraint.
All operations are exact and return new objects; Affine is immutable
and hashable so constraints can live in sets.
"""

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.intarith import gcd_list
from repro.qpoly import Polynomial


class Affine:
    """An immutable integer affine expression ``Σ coef·var + const``."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Optional[Mapping[str, int]] = None, const: int = 0):
        clean = {}
        if coeffs:
            for var, c in coeffs.items():
                if not isinstance(c, int):
                    raise TypeError("affine coefficients must be int, got %r" % (c,))
                if c:
                    clean[var] = c
        if not isinstance(const, int):
            raise TypeError("affine constant must be int, got %r" % (const,))
        object.__setattr__(self, "coeffs", tuple(sorted(clean.items())))
        object.__setattr__(self, "const", const)
        # Hash lazily: millions of Affines are transient intermediates
        # (substitution, tightening) that are never used as dict keys.
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("Affine is immutable")

    # -- constructors ---------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "Affine":
        return cls({name: 1})

    @classmethod
    def const_expr(cls, value: int) -> "Affine":
        return cls({}, value)

    @classmethod
    def _from_sorted(
        cls, items: Tuple[Tuple[str, int], ...], const: int
    ) -> "Affine":
        """Construct from a name-sorted, zero-free coefficient tuple.

        Internal fast path for the dense kernels (:mod:`repro.omega.kernels`),
        which produce coefficients in index order -- already canonical
        -- so the sorting/cleaning pass of ``__init__`` is pure waste.
        The caller owns the invariants: ``items`` sorted by name, no
        zero coefficients, everything an int.
        """
        obj = object.__new__(cls)
        object.__setattr__(obj, "coeffs", items)
        object.__setattr__(obj, "const", const)
        object.__setattr__(obj, "_hash", None)
        return obj

    # -- queries ----------------------------------------------------------

    def coeff(self, var: str) -> int:
        for v, c in self.coeffs:
            if v == var:
                return c
        return 0

    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    def uses(self, var: str) -> bool:
        return any(v == var for v, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.coeffs)

    def coeff_dict(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def content(self) -> int:
        """gcd of the variable coefficients (0 when constant)."""
        return gcd_list(c for _, c in self.coeffs)

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other) -> "Affine":
        if isinstance(other, Affine):
            return other
        if isinstance(other, int):
            return Affine({}, other)
        return NotImplemented

    def __add__(self, other) -> "Affine":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        coeffs = dict(self.coeffs)
        for var, c in other.coeffs:
            coeffs[var] = coeffs.get(var, 0) + c
        return Affine(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine({v: -c for v, c in self.coeffs}, -self.const)

    def __sub__(self, other) -> "Affine":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other) -> "Affine":
        return (-self) + other

    def __mul__(self, scalar: int) -> "Affine":
        if not isinstance(scalar, int):
            return NotImplemented
        return Affine({v: c * scalar for v, c in self.coeffs}, self.const * scalar)

    __rmul__ = __mul__

    def exact_div(self, d: int) -> "Affine":
        """Divide by d; every coefficient and the constant must divide."""
        if any(c % d for _, c in self.coeffs) or self.const % d:
            raise ValueError("%s not divisible by %d" % (self, d))
        return Affine({v: c // d for v, c in self.coeffs}, self.const // d)

    def __eq__(self, other) -> bool:
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.coeffs, self.const))
            object.__setattr__(self, "_hash", h)
        return h

    # -- substitution / evaluation ------------------------------------------

    def substitute(self, var: str, replacement: "Affine") -> "Affine":
        k = self.coeff(var)
        if k == 0:
            return self
        coeffs = {v: c for v, c in self.coeffs if v != var}
        base = Affine(coeffs, self.const)
        return base + replacement * k

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        coeffs: Dict[str, int] = {}
        for v, c in self.coeffs:
            nv = mapping.get(v, v)
            coeffs[nv] = coeffs.get(nv, 0) + c
        return Affine(coeffs, self.const)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = self.const
        for var, c in self.coeffs:
            total += c * env[var]
        return total

    def to_polynomial(self) -> Polynomial:
        return Polynomial.from_affine(dict(self.coeffs), self.const)

    # -- display ----------------------------------------------------------

    def __str__(self) -> str:
        parts = []
        for var, c in self.coeffs:
            if c == 1:
                parts.append("+ %s" % var)
            elif c == -1:
                parts.append("- %s" % var)
            elif c > 0:
                parts.append("+ %d*%s" % (c, var))
            else:
                parts.append("- %d*%s" % (-c, var))
        if self.const > 0 or not parts:
            parts.append("+ %d" % self.const)
        elif self.const < 0:
            parts.append("- %d" % -self.const)
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        elif text.startswith("- "):
            text = "-" + text[2:]
        return text

    def __repr__(self) -> str:
        return "Affine(%s)" % self
