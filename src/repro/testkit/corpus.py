"""Regression-corpus serialization for fuzz cases.

Every shrunk counterexample the fuzzer finds is saved as a small JSON
file -- seed, failing check, formula text, counted variables, symbols,
polynomial, sampled environments -- under a corpus directory
(``tests/corpus/`` in this repository).  The corpus is replayed as an
ordinary tier-1 test forever: a fixed bug must stay fixed, and the
entry doubles as a human-readable record of what went wrong once.

The formula travels as parser syntax (:mod:`repro.presburger.parser`),
not a pickled AST, so entries survive AST refactors and can be
reproduced by hand from the command line.
"""

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from repro.presburger.parser import parse
from repro.testkit.generate import FuzzCase, formula_to_text

#: bumped when the schema changes incompatibly; loaders reject unknown
#: versions loudly instead of misreading old entries.
SCHEMA_VERSION = 1


def case_to_json(
    case: FuzzCase,
    check: Optional[str] = None,
    note: Optional[str] = None,
) -> Dict:
    """A JSON-safe dict capturing everything needed to replay ``case``."""
    doc: Dict = {
        "schema": SCHEMA_VERSION,
        "seed": case.seed,
        "check": check,
        "formula": formula_to_text(case.formula),
        "over": list(case.over),
        "symbols": list(case.symbols),
        "poly": case.poly_text,
        "envs": [dict(env) for env in case.envs],
    }
    if note:
        doc["note"] = note
    return doc


def case_from_json(doc: Dict) -> Tuple[FuzzCase, Optional[str]]:
    """Rebuild ``(case, check_name)`` from :func:`case_to_json` output."""
    schema = doc.get("schema", SCHEMA_VERSION)
    if schema != SCHEMA_VERSION:
        raise ValueError(
            "corpus entry has schema %r; this loader understands %r"
            % (schema, SCHEMA_VERSION)
        )
    case = FuzzCase(
        parse(doc["formula"]),
        over=list(doc["over"]),
        symbols=list(doc.get("symbols") or ()),
        poly_text=doc.get("poly"),
        envs=[dict(env) for env in doc.get("envs") or ()],
        seed=doc.get("seed"),
    )
    return case, doc.get("check")


def save_case(
    directory: str,
    case: FuzzCase,
    check: str,
    note: Optional[str] = None,
) -> str:
    """Write a corpus entry; returns the path.

    The filename encodes the seed and check so collisions are
    overwrites of the same logical failure, not data loss.
    """
    os.makedirs(directory, exist_ok=True)
    name = "seed%s_%s.json" % (
        case.seed if case.seed is not None else "none",
        check,
    )
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(case_to_json(case, check, note), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_corpus(directory: str) -> Iterator[Tuple[str, FuzzCase, Optional[str]]]:
    """Yield ``(path, case, check)`` for every ``*.json`` entry, sorted."""
    if not os.path.isdir(directory):
        return
    names: List[str] = sorted(
        n for n in os.listdir(directory) if n.endswith(".json")
    )
    for name in names:
        path = os.path.join(directory, name)
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        case, check = case_from_json(doc)
        yield path, case, check


__all__ = [
    "SCHEMA_VERSION",
    "case_from_json",
    "case_to_json",
    "load_corpus",
    "save_case",
]
