"""Brute-force bounding-box oracle, independent of the Omega pipeline.

Evaluates truth, counts solutions and sums polynomials **directly from
the AST** by enumeration: atoms via :meth:`Affine.evaluate`, strides
via integer modulo, quantifiers via bounded search.  Nothing here
touches DNF conversion, satisfiability, elimination or the counting
recursion, so any disagreement with the engine implicates the engine
(or, symmetrically, this 40-line enumerator -- which is the point of
keeping it this small).

Soundness contract: the generator (:mod:`repro.testkit.generate`)
guarantees that every quantifier bounds its variable inside
``[-quant_box, quant_box]`` -- ``exists`` by conjoined constant box
atoms, ``forall`` in the vacuous-outside-the-box implication form --
so bounded enumeration of quantifiers is exact.  Counted variables are
box-bounded at the top level, so enumerating ``[-box, box]^d`` is
exact.  :func:`oracle_points` callers can detect a formula that
escaped its box (e.g. after an unsound shrink step) by a solution on
the box frontier.
"""

import itertools
from fractions import Fraction
from typing import Dict, Mapping, Sequence, Set, Tuple

from repro.presburger.ast import (
    And,
    Atom,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
    _Quantifier,
)
from repro.testkit.generate import BOX, QUANT_BOX


def oracle_eval(
    f: Formula, env: Mapping[str, int], quant_box: int = QUANT_BOX
) -> bool:
    """Truth of ``f`` under a complete assignment of its free variables.

    Quantifiers are resolved by enumerating the bound variables over
    ``[-quant_box, quant_box]`` (exact for generator-produced
    formulas; see the module docstring).
    """
    if f is TrueF:
        return True
    if f is FalseF:
        return False
    if isinstance(f, Atom):
        return f.constraint.satisfied(env)
    if isinstance(f, StrideAtom):
        return f.expr.evaluate(env) % f.modulus == 0
    if isinstance(f, And):
        return all(oracle_eval(c, env, quant_box) for c in f.children)
    if isinstance(f, Or):
        return any(oracle_eval(c, env, quant_box) for c in f.children)
    if isinstance(f, Not):
        return not oracle_eval(f.child, env, quant_box)
    if isinstance(f, _Quantifier):
        values = range(-quant_box, quant_box + 1)
        combine = any if not isinstance(f, Forall) else all
        inner: Dict[str, int] = dict(env)

        def attempts():
            for vals in itertools.product(values, repeat=len(f.variables)):
                inner.update(zip(f.variables, vals))
                yield oracle_eval(f.body, inner, quant_box)

        return combine(attempts())
    raise TypeError("unknown formula node %r" % (f,))


def oracle_points(
    f: Formula,
    over: Sequence[str],
    env: Mapping[str, int] = (),
    box: int = BOX,
    quant_box: int = QUANT_BOX,
) -> Set[Tuple[int, ...]]:
    """All solutions of ``over`` within ``[-box, box]^d`` at ``env``."""
    env = dict(env)
    out: Set[Tuple[int, ...]] = set()
    for vals in itertools.product(
        range(-box, box + 1), repeat=len(over)
    ):
        point = dict(env)
        point.update(zip(over, vals))
        if oracle_eval(f, point, quant_box):
            out.add(vals)
    return out


def on_frontier(points: Set[Tuple[int, ...]], box: int = BOX) -> bool:
    """Does any solution touch the enumeration box frontier?

    A frontier hit means the solution set may extend past the box, so
    an oracle count over the box would be a lower bound rather than
    exact.  Generated cases never hit the frontier; the shrinker uses
    this to reject candidates that dropped a bounding constraint.
    """
    return any(any(abs(v) >= box for v in p) for p in points)


def oracle_count(
    f: Formula,
    over: Sequence[str],
    env: Mapping[str, int] = (),
    box: int = BOX,
    quant_box: int = QUANT_BOX,
) -> int:
    """Number of solutions within the box (exact for generated cases)."""
    return len(oracle_points(f, over, env, box, quant_box))


def oracle_sum(
    f: Formula,
    over: Sequence[str],
    poly,
    env: Mapping[str, int] = (),
    box: int = BOX,
    quant_box: int = QUANT_BOX,
) -> Fraction:
    """Sum of ``poly`` over the solutions within the box."""
    total = Fraction(0)
    env = dict(env)
    for vals in oracle_points(f, over, env, box, quant_box):
        point = dict(env)
        point.update(zip(over, vals))
        total += poly.evaluate(point)
    return total


__all__ = [
    "on_frontier",
    "oracle_count",
    "oracle_eval",
    "oracle_points",
    "oracle_sum",
]
