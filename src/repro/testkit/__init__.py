"""Differential fuzzing harness for the counting engine.

Woods's characterization of Presburger-definable counting functions as
quasi-polynomials gives this library a checkable contract: the
symbolic answer, evaluated at any concrete assignment of the symbolic
constants, must equal a brute-force enumeration count.  The testkit
turns that contract into tooling:

* :mod:`repro.testkit.generate` -- a seeded, weighted random generator
  over the real :mod:`repro.presburger.ast` grammar (conjunction,
  disjunction, negation, quantifiers, strides, symbolic constants)
  with size and coefficient budgets that keep the brute-force oracle
  tractable;
* :mod:`repro.testkit.oracle` -- a bounding-box enumerator that
  evaluates, counts and polynomial-sums directly from the AST,
  independent of the Omega pipeline;
* :mod:`repro.testkit.checks` -- the differential and metamorphic
  invariants (engine vs oracle, rename/shuffle invariance of both the
  answer and the service content hash, simplify/gist preservation,
  disjoint-DNF vs inclusion-exclusion, disk-cache warm-vs-cold);
* :mod:`repro.testkit.shrink` -- greedy structural minimization of a
  failing case;
* :mod:`repro.testkit.corpus` -- JSON (de)serialization of cases so
  every shrunk failure becomes a permanent regression test under
  ``tests/corpus/``;
* :mod:`repro.testkit.fuzz` -- the driver behind
  ``python -m repro fuzz``.
"""

from repro.testkit.generate import (
    FuzzCase,
    formula_to_text,
    generate_case,
    rename_formula,
    shuffle_formula,
)
from repro.testkit.oracle import (
    oracle_count,
    oracle_eval,
    oracle_points,
    oracle_sum,
)
from repro.testkit.checks import CHECKS, CheckFailure, run_checks
from repro.testkit.shrink import shrink_case
from repro.testkit.corpus import case_from_json, case_to_json, load_corpus

__all__ = [
    "CHECKS",
    "CheckFailure",
    "FuzzCase",
    "case_from_json",
    "case_to_json",
    "formula_to_text",
    "generate_case",
    "load_corpus",
    "oracle_count",
    "oracle_eval",
    "oracle_points",
    "oracle_sum",
    "rename_formula",
    "run_checks",
    "shrink_case",
    "shuffle_formula",
]
