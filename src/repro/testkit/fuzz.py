"""Driver behind ``python -m repro fuzz``.

Each iteration derives a deterministic per-case seed (``base seed +
iteration``), generates a case, and runs the scheduled subset of
:data:`repro.testkit.checks.CHECKS` (cheap differential checks every
iteration, expensive end-to-end ones on their period).  Every failure
is greedily shrunk and written to the corpus directory as a JSON entry
that names the seed and the failing check -- re-running with that seed
(or replaying the entry file) reproduces it exactly.

Exit status: 0 when every iteration passed, 1 when any check failed,
2 on bad usage.
"""

import sys
import time
from typing import List, Optional

from repro.core import stats
from repro.testkit.checks import CHECKS, run_check, run_checks
from repro.testkit.corpus import load_corpus, save_case
from repro.testkit.generate import FuzzCase, formula_to_text, generate_case
from repro.testkit.shrink import shrink_case

DEFAULT_ITERATIONS = 100


def _report_failure(failure, shrunk: FuzzCase, path: Optional[str]) -> None:
    case = failure.case
    print(
        "FAIL seed=%s check=%s" % (case.seed if case else "?", failure.check)
    )
    print("  detail: %s" % failure.message)
    if case is not None:
        print("  formula: %s" % formula_to_text(case.formula))
    print(
        "  shrunk (%d constraints): %s"
        % (shrunk.atom_count(), formula_to_text(shrunk.formula))
    )
    print(
        "  over: %s  symbols: %s  envs: %s"
        % (
            ",".join(shrunk.over),
            ",".join(shrunk.symbols) or "-",
            [dict(e) for e in shrunk.envs],
        )
    )
    if shrunk.poly_text:
        print("  poly: %s" % shrunk.poly_text)
    if path:
        print("  saved: %s" % path)


def _replay(target: str) -> int:
    """Replay one corpus entry file, or every entry in a directory."""
    import json
    import os

    from repro.testkit.corpus import case_from_json

    if os.path.isdir(target):
        entries = list(load_corpus(target))
    else:
        with open(target, "r", encoding="utf-8") as fh:
            case, check = case_from_json(json.load(fh))
        entries = [(target, case, check)]
    if not entries:
        print("no corpus entries under %s" % target, file=sys.stderr)
        return 2
    failed = 0
    for path, case, check in entries:
        names = [check] if check in CHECKS else list(CHECKS)
        failures = [
            f for name in names for f in [run_check(name, case)] if f
        ]
        status = "FAIL" if failures else "ok"
        print(
            "%-4s %s (seed=%s, check=%s)"
            % (status, path, case.seed, check or "all")
        )
        for failure in failures:
            print("  detail: %s" % failure.message)
            failed += 1
    print(
        "replayed %d entries, %d failing" % (len(entries), failed),
        file=sys.stderr,
    )
    return 1 if failed else 0


def fuzz_main(args) -> int:
    """Entry point for the ``fuzz`` subcommand (argparse namespace)."""
    if args.stats:
        stats.reset_stats()
        stats.enable_stats()

    previous_backend = None
    if getattr(args, "backend", None):
        # Fuzz the whole run under a non-default router backend: every
        # unpinned count()/sum_poly() in every check now exercises that
        # backend's fragment test and fallback path.
        from repro.core.backend import set_backend

        previous_backend = set_backend(args.backend)
    try:
        return _fuzz_run(args)
    finally:
        if previous_backend is not None:
            from repro.core.backend import set_backend

            set_backend(previous_backend)


def _fuzz_run(args) -> int:

    if args.replay:
        code = _replay(args.replay)
        if args.stats:
            print("-- stats --", file=sys.stderr)
            print(stats.format_stats(stats.engine_snapshot()), file=sys.stderr)
        return code

    iterations = args.iterations
    if iterations is None and args.time_budget is None:
        iterations = DEFAULT_ITERATIONS
    deadline = (
        time.monotonic() + args.time_budget
        if args.time_budget is not None
        else None
    )

    ran = 0
    failures_found = 0
    start = time.monotonic()
    i = 0
    while iterations is None or i < iterations:
        if deadline is not None and time.monotonic() >= deadline:
            break
        case = generate_case(args.seed + i)
        failures = run_checks(case, iteration=i)
        for failure in failures:
            failures_found += 1
            shrunk = shrink_case(
                failure.case or case, failure.check, failure=failure
            )
            path = None
            if args.corpus:
                path = save_case(
                    args.corpus, shrunk, failure.check, note=failure.message
                )
            _report_failure(failure, shrunk, path)
        ran += 1
        i += 1
        if args.progress and ran % args.progress == 0:
            print(
                "fuzz: %d iterations, %d failures, %.1fs"
                % (ran, failures_found, time.monotonic() - start),
                file=sys.stderr,
            )

    print(
        "fuzz: seed=%d iterations=%d failures=%d wall=%.1fs"
        % (args.seed, ran, failures_found, time.monotonic() - start),
        file=sys.stderr,
    )
    if args.stats:
        print("-- stats --", file=sys.stderr)
        print(stats.format_stats(stats.engine_snapshot()), file=sys.stderr)
    return 1 if failures_found else 0


def add_fuzz_parser(sub) -> None:
    """Register the ``fuzz`` subcommand on an argparse subparsers object."""
    p = sub.add_parser(
        "fuzz",
        help="differential-fuzz the engine against a brute-force oracle",
        description="Generate random formulas, compare the engine's "
        "symbolic answers against brute-force enumeration, and check "
        "metamorphic invariants (renaming, shuffling, simplify, gist, "
        "caching).  Failures are shrunk and saved as replayable JSON "
        "corpus entries.",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed; iteration k uses seed+k (default: 0)",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="number of cases to generate (default: %d unless "
        "--time-budget is given)" % DEFAULT_ITERATIONS,
    )
    p.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new iterations after this much wall time",
    )
    p.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="save shrunk failures as JSON under DIR "
        "(e.g. tests/corpus; default: don't save)",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="replay a corpus entry file or directory instead of fuzzing",
    )
    p.add_argument(
        "--progress",
        type=int,
        default=0,
        metavar="N",
        help="print a progress line every N iterations (default: off)",
    )
    from repro.core.backend import BACKENDS

    p.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help="run the whole fuzz session under this counting backend "
        "(default: the REPRO_BACKEND router default)",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print engine counters to stderr after the run",
    )


__all__ = ["add_fuzz_parser", "fuzz_main", "DEFAULT_ITERATIONS"]
