"""Seeded random generation of fuzz cases over the real formula AST.

A :class:`FuzzCase` bundles everything one differential trial needs: a
formula, the variables to count over, an optional polynomial summand,
a handful of symbol assignments to evaluate at, and the enumeration
boxes that make the brute-force oracle exact.

The generator is **budgeted so the oracle stays sound and tractable**:

* every counted variable is pinned to a box at the top level (constant
  or ``symbol + c`` bounds), so the solution set is finite and lies
  inside ``[-box, box]`` for every sampled symbol assignment;
* every quantifier binds one variable and immediately bounds it with
  constant atoms inside ``[-QUANT_BOX, QUANT_BOX]`` (``exists`` via
  conjunction, ``forall`` via the vacuous-outside-the-box implication
  form), so bounded enumeration of quantifiers is exact;
* coefficients, constants and stride moduli are small, so atom
  boundaries cannot escape the box.

Everything is driven by one ``random.Random(seed)``: the same seed
always yields the same case, which is what lets a failure report be
replayed from its seed alone.
"""

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import (
    And,
    Atom,
    Exists,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
    _Quantifier,
)

#: Bound-variable enumeration box: generated quantifier bounds are
#: constants in [-3, 3], so enumerating [-QUANT_BOX, QUANT_BOX] is
#: exact (see :mod:`repro.testkit.oracle`).
QUANT_BOX = 4

#: Symbol assignments are sampled from [SYMBOL_MIN, SYMBOL_MAX].
SYMBOL_MIN = -1
SYMBOL_MAX = 5

#: Counted-variable box bounds: lower in [-3, 1], width in [0, 5], or
#: an upper of ``symbol + c`` with c in [-2, 2]; with symbols capped at
#: SYMBOL_MAX every solution coordinate stays within BOX - 1, so a
#: solution point on the box frontier means a formula escaped its box
#: (the shrinker uses this to reject unsound candidates).
BOX = 9

_COUNT_VARS = ("i", "j")
_SYMBOLS = ("n", "m")


class FuzzCase:
    """One differential trial: formula, counted vars, summand, envs."""

    __slots__ = ("seed", "formula", "over", "symbols", "poly_text", "envs")

    def __init__(
        self,
        formula: Formula,
        over: Sequence[str],
        symbols: Sequence[str] = (),
        poly_text: Optional[str] = None,
        envs: Sequence[Mapping[str, int]] = (),
        seed: Optional[int] = None,
    ):
        self.seed = seed
        self.formula = formula
        self.over = tuple(over)
        self.symbols = tuple(symbols)
        self.poly_text = poly_text
        self.envs = tuple(dict(env) for env in envs)

    def with_formula(self, formula: Formula) -> "FuzzCase":
        return FuzzCase(
            formula, self.over, self.symbols, self.poly_text, self.envs, self.seed
        )

    def with_envs(self, envs: Sequence[Mapping[str, int]]) -> "FuzzCase":
        return FuzzCase(
            self.formula, self.over, self.symbols, self.poly_text, envs, self.seed
        )

    def with_poly_text(self, poly_text: Optional[str]) -> "FuzzCase":
        return FuzzCase(
            self.formula, self.over, self.symbols, poly_text, self.envs, self.seed
        )

    def atom_count(self) -> int:
        return count_atoms(self.formula)

    def __repr__(self) -> str:
        return "FuzzCase(seed=%r, over=%s, formula=%s)" % (
            self.seed,
            list(self.over),
            formula_to_text(self.formula),
        )


# -- AST utilities shared by the testkit ---------------------------------


def count_atoms(f: Formula) -> int:
    """Number of atomic constraints (linear atoms + strides)."""
    if isinstance(f, (Atom, StrideAtom)):
        return 1
    if isinstance(f, (And, Or)):
        return sum(count_atoms(c) for c in f.children)
    if isinstance(f, Not):
        return count_atoms(f.child)
    if isinstance(f, _Quantifier):
        return count_atoms(f.body)
    return 0


def rename_formula(f: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename *every* occurrence, binders included.

    Unlike :meth:`Formula.substitute_affine` this renames bound
    variables too; it assumes the mapping introduces no capture (the
    testkit's fresh names never collide, and generated formulas never
    shadow).
    """
    if f is TrueF or f is FalseF:
        return f
    if isinstance(f, Atom):
        return Atom(f.constraint.rename(mapping))
    if isinstance(f, StrideAtom):
        return StrideAtom(f.modulus, f.expr.rename(mapping))
    if isinstance(f, And):
        return And.of(*(rename_formula(c, mapping) for c in f.children))
    if isinstance(f, Or):
        return Or.of(*(rename_formula(c, mapping) for c in f.children))
    if isinstance(f, Not):
        return Not(rename_formula(f.child, mapping))
    if isinstance(f, _Quantifier):
        return type(f)(
            [mapping.get(v, v) for v in f.variables],
            rename_formula(f.body, mapping),
        )
    raise TypeError("unknown formula node %r" % (f,))


def shuffle_formula(f: Formula, rng: random.Random) -> Formula:
    """Recursively shuffle ``and`` / ``or`` operand order (seeded)."""
    if isinstance(f, And) or isinstance(f, Or):
        children = [shuffle_formula(c, rng) for c in f.children]
        rng.shuffle(children)
        cls = And if isinstance(f, And) else Or
        return cls.of(*children)
    if isinstance(f, Not):
        return Not(shuffle_formula(f.child, rng))
    if isinstance(f, _Quantifier):
        return type(f)(f.variables, shuffle_formula(f.body, rng))
    return f


# -- formula -> text (the parser's grammar) ------------------------------


def _affine_text(expr: Affine) -> str:
    """Render an affine expression in parser syntax."""
    parts: List[str] = []
    for var, c in expr.coeffs:
        if c == 1:
            term = var
        elif c == -1:
            term = "-%s" % var
        else:
            term = "%d*%s" % (c, var)
        if parts and not term.startswith("-"):
            parts.append("+ %s" % term)
        elif parts:
            parts.append("- %s" % term[1:])
        else:
            parts.append(term)
    if expr.const or not parts:
        if parts:
            parts.append(
                "+ %d" % expr.const if expr.const > 0 else "- %d" % -expr.const
            )
        else:
            parts.append(str(expr.const))
    return " ".join(parts)


def formula_to_text(f: Formula) -> str:
    """Render a formula as text the parser accepts.

    The round trip ``parse(formula_to_text(f))`` preserves semantics
    and the canonical content hash (``And.of`` / ``Or.of`` flattening
    may regroup nodes, which the hash is invariant under).
    """
    if f is TrueF:
        return "true"
    if f is FalseF:
        return "false"
    if isinstance(f, Atom):
        op = ">=" if f.constraint.is_geq() else "="
        return "%s %s 0" % (_affine_text(f.constraint.expr), op)
    if isinstance(f, StrideAtom):
        return "%d | (%s)" % (f.modulus, _affine_text(f.expr))
    if isinstance(f, And):
        return " and ".join("(%s)" % formula_to_text(c) for c in f.children)
    if isinstance(f, Or):
        return " or ".join("(%s)" % formula_to_text(c) for c in f.children)
    if isinstance(f, Not):
        return "not (%s)" % formula_to_text(f.child)
    if isinstance(f, (Exists, Forall)):
        kind = "exists" if isinstance(f, Exists) else "forall"
        return "%s %s: (%s)" % (
            kind,
            ", ".join(f.variables),
            formula_to_text(f.body),
        )
    raise TypeError("unknown formula node %r" % (f,))


# -- the generator -------------------------------------------------------


def _affine(rng: random.Random, scope: Sequence[str]) -> Affine:
    """A small random affine expression over 1-2 scope variables."""
    vars_ = rng.sample(list(scope), rng.randint(1, min(2, len(scope))))
    coeffs = {}
    for v in vars_:
        c = rng.randint(1, 3) * rng.choice((1, -1))
        coeffs[v] = c
    return Affine(coeffs, rng.randint(-5, 5))


def _atom(rng: random.Random, scope: Sequence[str]) -> Formula:
    expr = _affine(rng, scope)
    if rng.random() < 0.25:
        return Atom(Constraint.eq(expr))
    return Atom(Constraint.geq(expr))


def _stride(rng: random.Random, scope: Sequence[str]) -> Formula:
    return StrideAtom(rng.randint(2, 4), _affine(rng, scope))


def _bound_box(var: str, lo: int, hi: int) -> List[Formula]:
    """``lo <= var`` and ``var <= hi`` as atoms."""
    v = Affine.var(var)
    return [
        Atom(Constraint.geq(v - lo)),
        Atom(Constraint.geq(-v + hi)),
    ]


def _quantifier(
    rng: random.Random, scope: Sequence[str], state: Dict[str, int]
) -> Formula:
    """A bounded one-variable quantifier (exact under enumeration)."""
    q = "q%d" % state["quantifiers"]
    state["quantifiers"] += 1
    lo = rng.randint(-3, 0)
    hi = lo + rng.randint(0, 3)
    inner_scope = list(scope) + [q]
    body = _tree(rng, inner_scope, depth=1, state=state)
    box = _bound_box(q, lo, hi)
    if rng.random() < 0.35:
        # forall q in [lo, hi]: body -- vacuously true outside the box.
        return Forall([q], Or.of(Not(And.of(*box)), body))
    return Exists([q], And.of(*(box + [body])))


def _tree(
    rng: random.Random,
    scope: Sequence[str],
    depth: int,
    state: Dict[str, int],
) -> Formula:
    """A random formula subtree with size and quantifier budgets."""
    roll = rng.random()
    if depth <= 0 or state["atoms"] <= 1:
        state["atoms"] -= 1
        return _stride(rng, scope) if roll < 0.25 else _atom(rng, scope)
    if roll < 0.30:
        state["atoms"] -= 1
        return _atom(rng, scope)
    if roll < 0.42:
        state["atoms"] -= 1
        return _stride(rng, scope)
    if roll < 0.62:
        k = rng.randint(2, 3)
        return And.of(*(_tree(rng, scope, depth - 1, state) for _ in range(k)))
    if roll < 0.82:
        k = rng.randint(2, 3)
        return Or.of(*(_tree(rng, scope, depth - 1, state) for _ in range(k)))
    if roll < 0.92:
        return Not(_tree(rng, scope, depth - 1, state))
    if state["quantifiers"] < 1:
        return _quantifier(rng, scope, state)
    return Not(_tree(rng, scope, depth - 1, state))


def _poly_text(rng: random.Random, over: Sequence[str]) -> str:
    """A small random summand polynomial over the counted variables."""
    monos = []
    for _ in range(rng.randint(1, 2)):
        coef = rng.randint(1, 2) * rng.choice((1, -1))
        factors = [str(coef)]
        for v in over:
            for _ in range(rng.randint(0, 2)):
                factors.append(v)
        monos.append("*".join(factors))
    return " + ".join(monos)


def generate_case(seed: int) -> FuzzCase:
    """The deterministic fuzz case for ``seed``."""
    rng = random.Random(seed)
    over = list(rng.sample(_COUNT_VARS, rng.randint(1, 2)))
    symbols = [s for s in _SYMBOLS if rng.random() < 0.5]

    scope = over + symbols
    pieces: List[Formula] = []
    for v in over:
        lo = rng.randint(-3, 1)
        if symbols and rng.random() < 0.5:
            # Upper bound symbol + c: box atoms lo <= v <= sym + c.
            sym = rng.choice(symbols)
            c = rng.randint(-2, 2)
            upper = Atom(
                Constraint.geq(Affine.var(sym) - Affine.var(v) + c)
            )
            pieces.append(Atom(Constraint.geq(Affine.var(v) - lo)))
            pieces.append(upper)
        else:
            hi = lo + rng.randint(0, 5)
            pieces.extend(_bound_box(v, lo, hi))

    state = {"atoms": 5, "quantifiers": 0}
    pieces.append(_tree(rng, scope, depth=rng.randint(1, 3), state=state))
    formula = And.of(*pieces)

    envs: List[Dict[str, int]] = [{s: 0 for s in symbols}]
    for _ in range(2):
        envs.append(
            {s: rng.randint(SYMBOL_MIN, SYMBOL_MAX) for s in symbols}
        )
    # Deduplicate (symbol-free cases collapse to the single empty env).
    seen = set()
    unique_envs = []
    for env in envs:
        key = tuple(sorted(env.items()))
        if key not in seen:
            seen.add(key)
            unique_envs.append(env)

    poly_text = _poly_text(rng, over) if rng.random() < 0.5 else None
    return FuzzCase(
        formula,
        over,
        symbols,
        poly_text=poly_text,
        envs=unique_envs,
        seed=seed,
    )


__all__ = [
    "BOX",
    "QUANT_BOX",
    "SYMBOL_MAX",
    "SYMBOL_MIN",
    "FuzzCase",
    "count_atoms",
    "formula_to_text",
    "generate_case",
    "rename_formula",
    "shuffle_formula",
]
