"""Differential and metamorphic invariants for fuzz cases.

Each check takes a :class:`~repro.testkit.generate.FuzzCase` and
returns ``None`` (pass) or a :class:`CheckFailure`.  The registry
:data:`CHECKS` maps check names to ``(period, function)`` -- the fuzz
driver runs a check on every ``period``-th iteration, so cheap
differential checks run always and expensive end-to-end ones are
sampled.  Any exception escaping a check (engine crash, DNF explosion)
is itself reported as a failure: the engine must degrade gracefully on
every formula the grammar can produce.

The invariants:

* ``count_oracle`` / ``sum_oracle`` -- the engine's symbolic answer,
  evaluated at each sampled symbol assignment, equals brute-force
  enumeration (the Woods quasi-polynomial contract).
* ``truth_oracle`` -- :meth:`Formula.evaluate` (DNF + Omega
  satisfiability) agrees with direct AST evaluation on sampled points.
* ``rename_hash`` / ``shuffle_hash`` -- alpha-renaming the counted and
  quantifier-bound variables, or shuffling ``and``/``or`` operands,
  changes neither the evaluated answer nor the service content hash
  (:meth:`repro.service.request.JobRequest.content_hash`).
* ``simplify_value`` -- ``SymbolicSum.simplified()`` preserves the
  evaluated answer.
* ``compiled_eval`` -- the :mod:`repro.evalc` compiled evaluator
  (point and table entry points) is bit-for-bit equal to interpreted
  evaluation, including at zero and negative symbol values.
* ``answer_memo`` -- counting with the answer memo enabled (cold and
  warm) serializes and evaluates identically to counting with it
  disabled, int-vs-Fraction types included.
* ``kernels_backend`` -- the dense row kernels and the dict-backed
  Affine path produce byte-identical serialized answers and evaluated
  values (the ``REPRO_KERNELS`` contract), each computed from a cold
  engine so neither backend can ride the other's caches.
* ``genfunc_backend`` -- the generating-function backend
  (:mod:`repro.genfunc`), both through the router (fallback included)
  and engine-against-engine on the concretized formula, agrees with
  the recursion at every sampled assignment.
* ``automaton_backend`` -- the binary-automaton backend
  (:mod:`repro.automaton`): routed counts match the recursion, the
  DFA's path/box counts match the recursion and brute force, and
  O(bits) membership matches direct evaluation on sampled points
  (negatives included).
* ``formula_simplify`` -- ``presburger.simplify`` preserves the
  solution set, and its disjoint form covers each point exactly once.
* ``gist_preserves`` -- ``gist(C, Q) ∧ Q  ≡  C ∧ Q`` pointwise.
* ``disjoint_vs_ie`` -- the engine's disjoint-DNF count agrees with
  the independent FST91 inclusion-exclusion baseline.
* ``cache_warm_cold`` -- a batch-service job answered cold (computed)
  and warm (from the disk cache) yields identical stable fields.
"""

import itertools
import random
import tempfile
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import count, sum_poly
from repro.presburger.ast import _Quantifier, And, Formula, Not, Or
from repro.presburger.dnf import to_dnf
from repro.qpoly.parse import parse_polynomial
from repro.testkit.generate import (
    BOX,
    FuzzCase,
    formula_to_text,
    rename_formula,
    shuffle_formula,
)
from repro.testkit.oracle import oracle_count, oracle_eval, oracle_points, oracle_sum


class CheckFailure(Exception):
    """A failed invariant: the check name plus a human-readable detail."""

    def __init__(self, check: str, message: str, case: Optional[FuzzCase] = None):
        super().__init__("%s: %s" % (check, message))
        self.check = check
        self.message = message
        self.case = case

    def __repr__(self) -> str:
        return "CheckFailure(%s: %s)" % (self.check, self.message)


def _case_seed(case: FuzzCase) -> int:
    return case.seed if case.seed is not None else 0


def _bound_variables(f: Formula) -> List[str]:
    out: List[str] = []
    stack = [f]
    while stack:
        node = stack.pop()
        if isinstance(node, _Quantifier):
            out.extend(node.variables)
            stack.append(node.body)
        elif isinstance(node, (And, Or)):
            stack.extend(node.children)
        elif isinstance(node, Not):
            stack.append(node.child)
    return out


def _content_hash(
    case: FuzzCase,
    formula: Formula,
    over: Sequence[str],
    poly_text: Optional[str] = None,
) -> str:
    from repro.service.request import JobRequest

    if poly_text is None:
        poly_text = case.poly_text
    kind = "sum" if poly_text else "count"
    return JobRequest(
        kind,
        formula_to_text(formula),
        over=list(over),
        poly=poly_text if poly_text else None,
    ).content_hash()


# -- the individual checks -----------------------------------------------


def check_count_oracle(case: FuzzCase) -> Optional[CheckFailure]:
    result = count(case.formula, list(case.over))
    for env in case.envs:
        want = oracle_count(case.formula, case.over, env)
        got = result.evaluate(env)
        if got != want:
            return CheckFailure(
                "count_oracle",
                "engine %s != oracle %s at %s" % (got, want, dict(env)),
                case,
            )
    return None


def check_sum_oracle(case: FuzzCase) -> Optional[CheckFailure]:
    if not case.poly_text:
        return None
    poly = parse_polynomial(case.poly_text)
    result = sum_poly(case.formula, list(case.over), poly)
    for env in case.envs:
        want = oracle_sum(case.formula, case.over, poly, env)
        got = result.evaluate(env)
        if got != want:
            return CheckFailure(
                "sum_oracle",
                "engine %s != oracle %s at %s (poly %s)"
                % (got, want, dict(env), case.poly_text),
                case,
            )
    return None


def check_truth_oracle(case: FuzzCase) -> Optional[CheckFailure]:
    rng = random.Random(_case_seed(case) ^ 0x7255)
    env = dict(case.envs[0]) if case.envs else {}
    for _ in range(10):
        point = dict(env)
        for v in case.over:
            point[v] = rng.randint(-BOX + 1, BOX - 1)
        via_omega = case.formula.evaluate(point)
        via_oracle = oracle_eval(case.formula, point)
        if via_omega != via_oracle:
            return CheckFailure(
                "truth_oracle",
                "Formula.evaluate=%s but direct evaluation=%s at %s"
                % (via_omega, via_oracle, point),
                case,
            )
    return None


def check_rename_hash(case: FuzzCase) -> Optional[CheckFailure]:
    mapping = {v: "rv%d" % k for k, v in enumerate(case.over)}
    mapping.update(
        {v: "rb%d" % k for k, v in enumerate(_bound_variables(case.formula))}
    )
    renamed = rename_formula(case.formula, mapping)
    new_over = [mapping[v] for v in case.over]
    renamed_poly = None
    if case.poly_text:
        renamed_poly = str(parse_polynomial(case.poly_text).rename(mapping))
    h0 = _content_hash(case, case.formula, case.over)
    h1 = _content_hash(case, renamed, new_over, poly_text=renamed_poly)
    if h0 != h1:
        return CheckFailure(
            "rename_hash",
            "content hash not invariant under alpha-renaming %s" % mapping,
            case,
        )
    result = count(renamed, new_over)
    for env in case.envs:
        want = oracle_count(case.formula, case.over, env)
        got = result.evaluate(env)
        if got != want:
            return CheckFailure(
                "rename_hash",
                "renamed count %s != oracle %s at %s" % (got, want, dict(env)),
                case,
            )
    return None


def check_shuffle_hash(case: FuzzCase) -> Optional[CheckFailure]:
    rng = random.Random(_case_seed(case) ^ 0x5EED)
    shuffled = shuffle_formula(case.formula, rng)
    h0 = _content_hash(case, case.formula, case.over)
    h1 = _content_hash(case, shuffled, case.over)
    if h0 != h1:
        return CheckFailure(
            "shuffle_hash",
            "content hash not invariant under operand shuffling",
            case,
        )
    result = count(shuffled, list(case.over))
    for env in case.envs:
        want = oracle_count(case.formula, case.over, env)
        got = result.evaluate(env)
        if got != want:
            return CheckFailure(
                "shuffle_hash",
                "shuffled count %s != oracle %s at %s" % (got, want, dict(env)),
                case,
            )
    return None


def check_simplify_value(case: FuzzCase) -> Optional[CheckFailure]:
    result = count(case.formula, list(case.over))
    simplified = result.simplified()
    for env in case.envs:
        got, want = simplified.evaluate(env), result.evaluate(env)
        if got != want:
            return CheckFailure(
                "simplify_value",
                "simplified() changed the answer at %s: %s != %s"
                % (dict(env), got, want),
                case,
            )
    return None


def _clause_points(
    clauses, over: Sequence[str], env: Mapping[str, int]
) -> Dict[Tuple[int, ...], int]:
    """point -> number of clauses covering it (within the box)."""
    hits: Dict[Tuple[int, ...], int] = {}
    for clause in clauses:
        for vals in itertools.product(
            range(-BOX, BOX + 1), repeat=len(over)
        ):
            point = dict(env)
            point.update(zip(over, vals))
            # Restrict to the variables this clause actually mentions.
            free = set(clause.free_variables())
            if clause.is_satisfied({k: v for k, v in point.items() if k in free}):
                hits[vals] = hits.get(vals, 0) + 1
    return hits


def check_formula_simplify(case: FuzzCase) -> Optional[CheckFailure]:
    from repro.presburger.simplify import simplify

    for disjoint in (False, True):
        clauses = simplify(case.formula, disjoint=disjoint)
        for env in case.envs:
            want = oracle_points(case.formula, case.over, env)
            hits = _clause_points(clauses, case.over, env)
            if set(hits) != want:
                missing = sorted(want - set(hits))[:4]
                extra = sorted(set(hits) - want)[:4]
                return CheckFailure(
                    "formula_simplify",
                    "simplify(disjoint=%s) changed the solution set at %s"
                    " (missing %s, extra %s)" % (disjoint, dict(env), missing, extra),
                    case,
                )
            if disjoint:
                overlaps = {p: k for p, k in hits.items() if k > 1}
                if overlaps:
                    return CheckFailure(
                        "formula_simplify",
                        "disjoint clauses overlap at %s: %s"
                        % (dict(env), sorted(overlaps)[:4]),
                        case,
                    )
    return None


def check_gist_preserves(case: FuzzCase) -> Optional[CheckFailure]:
    from repro.omega.problem import Conjunct
    from repro.omega.redundancy import gist

    rng = random.Random(_case_seed(case) ^ 0x6157)
    clauses = [c for c in to_dnf(case.formula) if len(c.constraints) >= 2]
    if not clauses:
        return None
    clause = clauses[rng.randrange(len(clauses))]
    keep = [c for c in clause.constraints if rng.random() < 0.5]
    context = Conjunct(keep, clause.wildcards)
    result = gist(clause, context)
    merged_g = result.merge(context)
    merged_c = clause.merge(context)
    for env in case.envs:
        for vals in itertools.product(
            range(-BOX, BOX + 1), repeat=len(case.over)
        ):
            point = dict(env)
            point.update(zip(case.over, vals))

            def truth(conj):
                free = set(conj.free_variables())
                return conj.is_satisfied(
                    {k: v for k, v in point.items() if k in free}
                )

            if truth(merged_g) != truth(merged_c):
                return CheckFailure(
                    "gist_preserves",
                    "gist(C, Q) ∧ Q differs from C ∧ Q at %s"
                    " (C = %s, Q = %s)" % (point, clause, context),
                    case,
                )
    return None


def check_disjoint_vs_ie(case: FuzzCase) -> Optional[CheckFailure]:
    from repro.baselines import inclusion_exclusion_count

    clauses = to_dnf(case.formula)
    if not 2 <= len(clauses) <= 4:
        return None  # inclusion-exclusion is 2^k; keep the check cheap
    engine = count(clauses, list(case.over))
    ie, _ = inclusion_exclusion_count(clauses, list(case.over))
    for env in case.envs:
        got, want = engine.evaluate(env), ie.evaluate(env)
        if got != want:
            return CheckFailure(
                "disjoint_vs_ie",
                "disjoint-DNF %s != inclusion-exclusion %s at %s"
                % (got, want, dict(env)),
                case,
            )
    return None


def check_cache_warm_cold(case: FuzzCase) -> Optional[CheckFailure]:
    import os

    from repro.service.batch import VOLATILE_RESPONSE_KEYS, run_batch
    from repro.service.diskcache import DiskCache
    from repro.service.request import JobRequest

    request = JobRequest(
        "count",
        formula_to_text(case.formula),
        over=list(case.over),
        at=list(case.envs),
        timeout=120.0,
    )

    def stable(response: dict) -> dict:
        return {
            k: v
            for k, v in response.items()
            if k not in VOLATILE_RESPONSE_KEYS and k != "stats"
        }

    with tempfile.TemporaryDirectory() as tmp:
        with DiskCache(os.path.join(tmp, "cache.sqlite")) as cache:
            cold, _ = run_batch([request], workers=1, cache=cache)
            warm, _ = run_batch([request], workers=1, cache=cache)
    if not cold[0]["ok"]:
        return CheckFailure(
            "cache_warm_cold",
            "cold batch run failed: %s" % (cold[0].get("error"),),
            case,
        )
    if not warm[0]["cached"]:
        return CheckFailure(
            "cache_warm_cold", "warm re-run missed the disk cache", case
        )
    if stable(cold[0]) != stable(warm[0]):
        return CheckFailure(
            "cache_warm_cold",
            "warm response diverged from cold: %s != %s"
            % (stable(warm[0]), stable(cold[0])),
            case,
        )
    return None


def check_answer_memo(case: FuzzCase) -> Optional[CheckFailure]:
    """Memo-on and memo-off runs produce the same answer.

    Compares the serialized ``SymbolicSum`` byte-for-byte and the
    evaluated values (int-vs-Fraction type included) between a run
    with the answer memo enabled -- cold, then again warm so real hits
    are exercised -- and a run with it disabled.  Both runs start from
    the same fresh-name counter; the deterministic wildcard relabeling
    in ``repro.core.general`` is what makes byte equality a fair ask.
    """
    import json

    from repro.core.memo import clear_answer_memo, set_answer_memo
    from repro.omega.constraints import reset_fresh_counter

    poly = parse_polynomial(case.poly_text) if case.poly_text else 1

    def run():
        reset_fresh_counter()
        return sum_poly(case.formula, list(case.over), poly)

    previous = set_answer_memo(True)
    try:
        clear_answer_memo()
        cold = run()
        warm = run()  # answered (at least at the roots) from the memo
        set_answer_memo(0)  # also clears every entry
        off = run()
    finally:
        set_answer_memo(previous)
    baseline = json.dumps(off.to_json(), sort_keys=True)
    for label, result in (("cold", cold), ("warm", warm)):
        got = json.dumps(result.to_json(), sort_keys=True)
        if got != baseline:
            return CheckFailure(
                "answer_memo",
                "memo-on (%s) serialization diverged from memo-off:"
                " %s != %s" % (label, got[:200], baseline[:200]),
                case,
            )
    for env in case.envs:
        want = off.evaluate(env)
        for label, result in (("cold", cold), ("warm", warm)):
            got = result.evaluate(env)
            if got != want or type(got) is not type(want):
                return CheckFailure(
                    "answer_memo",
                    "memo-on (%s) %r != memo-off %r at %s"
                    % (label, got, want, dict(env)),
                    case,
                )
    return None


def check_kernels_backend(case: FuzzCase) -> Optional[CheckFailure]:
    """Dense and dict kernels produce byte-identical answers.

    Runs the same count/sum under ``REPRO_KERNELS=dense`` and
    ``REPRO_KERNELS=dict`` semantics, each from a cold engine (cleared
    satisfiability cache and answer memo, reset fresh-name counter, so
    neither backend is answered from the other's cached work), and
    compares the serialized ``SymbolicSum`` byte-for-byte plus the
    evaluated values with their int-vs-Fraction types.
    """
    import json

    from repro.core.memo import clear_answer_memo
    from repro.omega import set_kernels_backend
    from repro.omega.constraints import reset_fresh_counter
    from repro.omega.satisfiability import clear_sat_cache

    poly = parse_polynomial(case.poly_text) if case.poly_text else 1

    def run(backend):
        previous = set_kernels_backend(backend)
        try:
            clear_sat_cache()
            clear_answer_memo()
            reset_fresh_counter()
            return sum_poly(case.formula, list(case.over), poly)
        finally:
            set_kernels_backend(previous)

    dense = run("dense")
    dict_ = run("dict")
    dense_json = json.dumps(dense.to_json(), sort_keys=True)
    dict_json = json.dumps(dict_.to_json(), sort_keys=True)
    if dense_json != dict_json:
        return CheckFailure(
            "kernels_backend",
            "dense serialization diverged from dict: %s != %s"
            % (dense_json[:200], dict_json[:200]),
            case,
        )
    for env in case.envs:
        want = dict_.evaluate(env)
        got = dense.evaluate(env)
        if got != want or type(got) is not type(want):
            return CheckFailure(
                "kernels_backend",
                "dense %r != dict %r at %s" % (got, want, dict(env)),
                case,
            )
    return None


def check_genfunc_backend(case: FuzzCase) -> Optional[CheckFailure]:
    """The generating-function backend agrees with the recursion.

    Two layers:

    * **Router**: ``count(..., backend="genfunc")`` -- which answers
      from the cone pipeline inside its fragment and falls back to the
      recursion outside it -- must evaluate to the recursion's answer
      at every sampled assignment.
    * **Engine-vs-engine**: per assignment, the symbol values are
      substituted into the formula and the now-concrete query is
      counted *directly* by :func:`repro.genfunc.genfunc_count_value`;
      an independent exact engine, so agreement here is a far stronger
      oracle than the brute-force box.  Assignments the cone pipeline
      rejects (``UnsupportedFormula``) are skipped, never failed --
      the router's fallback covers them above.
    """
    from repro.core.memo import clear_answer_memo
    from repro.genfunc import UnsupportedFormula, genfunc_count_value
    from repro.omega.constraints import reset_fresh_counter
    from repro.omega.satisfiability import clear_sat_cache

    def cold():
        clear_sat_cache()
        clear_answer_memo()
        reset_fresh_counter()

    cold()
    baseline = count(case.formula, list(case.over))
    cold()
    routed = count(case.formula, list(case.over), backend="genfunc")
    envs = [dict(env) for env in case.envs] or [{}]
    for env in envs:
        want = baseline.evaluate(env)
        got = routed.evaluate(env)
        if got != want or type(got) is not type(want):
            return CheckFailure(
                "genfunc_backend",
                "routed genfunc %r != recursion %r at %s"
                % (got, want, env),
                case,
            )
        concrete = case.formula.substitute_values(env) if env else case.formula
        try:
            direct = genfunc_count_value(concrete, list(case.over))
        except UnsupportedFormula:
            continue
        if direct != want:
            return CheckFailure(
                "genfunc_backend",
                "genfunc cone count %r != recursion %r at %s"
                % (direct, want, env),
                case,
            )
    return None


def check_automaton_backend(case: FuzzCase) -> Optional[CheckFailure]:
    """The binary-automaton backend agrees with the recursion.

    Three layers:

    * **Router**: ``count(..., backend="automaton")`` -- answered by
      the DFA inside its fragment, recursion fallback outside -- must
      evaluate to the recursion's answer at every sampled assignment.
    * **Engine-vs-engine**: per assignment the symbols are substituted
      away and the concrete formula is compiled to a DFA directly
      (:func:`repro.automaton.automaton_for`); its minimal-word path
      count must equal the recursion's, its box count over the oracle
      box must equal brute-force enumeration, and (cross-engine) the
      generating-function count when that fragment accepts the formula.
      ``UnsupportedFormula`` skips, never fails -- the router's
      fallback covers those above.
    * **Membership**: the DFA's O(bits) word walk agrees with direct
      AST evaluation on sampled points in and around the box,
      negatives included (the two's-complement sign contract).
    """
    from repro.automaton import (
        UnsupportedFormula,
        automaton_for,
        clear_automaton_cache,
        count_box,
        count_exact,
        member,
    )
    from repro.core.convex import UnboundedSumError
    from repro.core.memo import clear_answer_memo
    from repro.genfunc import UnsupportedFormula as GenfuncUnsupported
    from repro.genfunc import genfunc_count_value
    from repro.omega.constraints import reset_fresh_counter
    from repro.omega.satisfiability import clear_sat_cache

    def cold():
        clear_sat_cache()
        clear_answer_memo()
        clear_automaton_cache()
        reset_fresh_counter()

    cold()
    baseline = count(case.formula, list(case.over))
    cold()
    routed = count(case.formula, list(case.over), backend="automaton")
    rng = random.Random(_case_seed(case) ^ 0xD0FA)
    over = list(case.over)
    envs = [dict(env) for env in case.envs] or [{}]
    for env in envs:
        want = baseline.evaluate(env)
        got = routed.evaluate(env)
        if got != want or type(got) is not type(want):
            return CheckFailure(
                "automaton_backend",
                "routed automaton %r != recursion %r at %s"
                % (got, want, env),
                case,
            )
        concrete = case.formula.substitute_values(env) if env else case.formula
        try:
            aut = automaton_for(concrete, over, cache=False)
        except UnsupportedFormula:
            continue
        try:
            direct = count_exact(aut)
        except UnboundedSumError:
            direct = None  # infinite set; box/membership still checked
        if direct is not None and direct != want:
            return CheckFailure(
                "automaton_backend",
                "automaton path count %r != recursion %r at %s"
                % (direct, want, env),
                case,
            )
        try:
            via_genfunc = genfunc_count_value(concrete, over)
        except GenfuncUnsupported:
            via_genfunc = None
        if via_genfunc is not None and via_genfunc != want:
            return CheckFailure(
                "automaton_backend",
                "genfunc count %r != recursion %r at %s (automaton %r)"
                % (via_genfunc, want, env, direct),
                case,
            )
        points = oracle_points(case.formula, case.over, env)
        boxed = count_box(aut, [-BOX] * len(over), [BOX] * len(over))
        if boxed != len(points):
            return CheckFailure(
                "automaton_backend",
                "automaton box count %r != oracle %r at %s"
                % (boxed, len(points), env),
                case,
            )
        for _ in range(10):
            vals = [rng.randint(-BOX - 2, BOX + 2) for _ in over]
            want_in = oracle_eval(
                concrete, dict(zip(over, vals))
            )
            got_in = member(aut, vals)
            if got_in != want_in:
                return CheckFailure(
                    "automaton_backend",
                    "automaton membership %r != direct %r at %s"
                    % (got_in, want_in, dict(zip(over, vals))),
                    case,
                )
    return None


def check_compiled_eval(case: FuzzCase) -> Optional[CheckFailure]:
    """Compiled evaluation is bit-for-bit the interpreted evaluation.

    Compares :meth:`CompiledSum.at` (value *and* int-vs-Fraction type)
    and :meth:`CompiledSum.table` against ``SymbolicSum.evaluate`` --
    at the sampled envs plus all-zero, all-negative, and widened
    assignments, so negative and zero symbolic constants (where mod
    and floor-division conventions diverge between languages) are
    always exercised.
    """
    from repro.evalc import compile_sum

    if case.poly_text:
        result = sum_poly(
            case.formula, list(case.over), parse_polynomial(case.poly_text)
        )
    else:
        result = count(case.formula, list(case.over))
    compiled = compile_sum(result)
    symbols = sorted(result.symbols())
    envs = [dict(env) for env in case.envs]
    if symbols:
        envs.append({s: 0 for s in symbols})
        envs.append({s: -3 - i for i, s in enumerate(symbols)})
        rng = random.Random(_case_seed(case) ^ 0xE7A1)
        for _ in range(4):
            envs.append({s: rng.randint(-17, 23) for s in symbols})
    else:
        envs.append({})
    for env in envs:
        want = result.evaluate(env)
        got = compiled.at(env)
        if got != want or type(got) is not type(want):
            return CheckFailure(
                "compiled_eval",
                "compiled %r != interpreted %r at %s"
                % (got, want, dict(env)),
                case,
            )
    if symbols:
        var = symbols[0]
        fixed = {s: 2 for s in symbols if s != var}
        want_table = [
            (v, result.evaluate(dict(fixed, **{var: v})))
            for v in range(-9, 15)
        ]
        got_table = compiled.table(var, range(-9, 15), **fixed)
        if got_table != want_table:
            diff = [
                (a, b) for a, b in zip(got_table, want_table) if a != b
            ][:3]
            return CheckFailure(
                "compiled_eval",
                "compiled table diverges along %s (fixed %s): %s"
                % (var, fixed, diff),
                case,
            )
    return None


#: name -> (period, check).  A check runs on iterations where
#: ``iteration % period == 0``; replay and shrinking always run the
#: named check directly.
CHECKS: Dict[str, Tuple[int, Callable[[FuzzCase], Optional[CheckFailure]]]] = {
    "count_oracle": (1, check_count_oracle),
    "sum_oracle": (1, check_sum_oracle),
    "truth_oracle": (2, check_truth_oracle),
    "rename_hash": (3, check_rename_hash),
    "shuffle_hash": (3, check_shuffle_hash),
    "simplify_value": (3, check_simplify_value),
    "compiled_eval": (2, check_compiled_eval),
    "answer_memo": (2, check_answer_memo),
    "kernels_backend": (2, check_kernels_backend),
    "genfunc_backend": (2, check_genfunc_backend),
    "automaton_backend": (2, check_automaton_backend),
    "formula_simplify": (7, check_formula_simplify),
    "gist_preserves": (7, check_gist_preserves),
    "disjoint_vs_ie": (5, check_disjoint_vs_ie),
    "cache_warm_cold": (31, check_cache_warm_cold),
}


def run_check(name: str, case: FuzzCase) -> Optional[CheckFailure]:
    """Run one named check; exceptions become failures too."""
    _, fn = CHECKS[name]
    try:
        return fn(case)
    except CheckFailure:
        raise
    except Exception as exc:
        return CheckFailure(
            name, "exception: %s: %s" % (type(exc).__name__, exc), case
        )


def run_checks(
    case: FuzzCase,
    names: Optional[Sequence[str]] = None,
    iteration: Optional[int] = None,
) -> List[CheckFailure]:
    """Run the selected checks; returns every failure found.

    With ``iteration`` given, a check runs only when ``iteration`` is
    a multiple of its period (the fuzz driver's sampling schedule).
    """
    failures: List[CheckFailure] = []
    for name in names if names is not None else list(CHECKS):
        period, _ = CHECKS[name]
        if iteration is not None and iteration % period != 0:
            continue
        failure = run_check(name, case)
        if failure is not None:
            failures.append(failure)
    return failures


__all__ = [
    "CHECKS",
    "CheckFailure",
    "run_check",
    "run_checks",
]
