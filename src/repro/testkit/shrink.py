"""Greedy structural shrinking of a failing fuzz case.

Given a case that fails a named check, repeatedly try smaller variants
-- fewer symbol environments, dropped ``and``/``or`` operands, hoisted
subtrees, eliminated quantifiers and negations, coefficients and
constants pulled toward zero -- keeping a variant whenever it *still
fails the same check*.  Candidates need not be semantically equivalent
to the original (each one is re-validated by re-running the check);
they only need to be structurally smaller, which guarantees
termination.

Two soundness rules keep shrinking from manufacturing fake failures:

* The shrinker never edits *inside* a quantifier body.  The oracle's
  bounded quantifier enumeration is only exact because the generator
  boxes every bound variable; an edit under the binder could break
  that contract invisibly.  Quantifier nodes are only replaced
  wholesale -- by ``true``/``false`` or by their body with the bound
  variables substituted by small constants.
* Any candidate whose oracle solutions touch the enumeration-box
  frontier is rejected (:func:`repro.testkit.oracle.on_frontier`):
  a frontier hit means a bounding constraint was dropped and the
  brute-force count is no longer exact, so engine-vs-oracle
  disagreement would be the shrinker's fault, not the engine's.
"""

from typing import Iterator, List, Optional, Tuple

from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.presburger.ast import (
    And,
    Atom,
    FalseF,
    Formula,
    Not,
    Or,
    StrideAtom,
    TrueF,
    _Quantifier,
)
from repro.testkit.generate import FuzzCase
from repro.testkit.oracle import on_frontier, oracle_points

Path = Tuple[int, ...]


def _children(f: Formula) -> Tuple[Formula, ...]:
    """Editable children.  Quantifier bodies are deliberately opaque."""
    if isinstance(f, (And, Or)):
        return f.children
    if isinstance(f, Not):
        return (f.child,)
    return ()


def _rebuild(f: Formula, children: List[Formula]) -> Formula:
    if isinstance(f, And):
        return And.of(*children)
    if isinstance(f, Or):
        return Or.of(*children)
    if isinstance(f, Not):
        return Not(children[0])
    raise TypeError("cannot rebuild %r" % (f,))


def _replace(f: Formula, path: Path, new: Formula) -> Formula:
    if not path:
        return new
    kids = list(_children(f))
    kids[path[0]] = _replace(kids[path[0]], path[1:], new)
    return _rebuild(f, kids)


def _paths(f: Formula, prefix: Path = ()) -> Iterator[Tuple[Path, Formula]]:
    yield prefix, f
    for i, child in enumerate(_children(f)):
        yield from _paths(child, prefix + (i,))


def _toward_zero(value: int) -> int:
    return value // 2 if value >= 0 else -((-value) // 2)


def _affine_variants(expr: Affine) -> Iterator[Affine]:
    coeffs = expr.coeff_dict()
    if expr.const:
        yield Affine(coeffs, 0)
        half = _toward_zero(expr.const)
        if half:
            yield Affine(coeffs, half)
    for var, c in expr.coeffs:
        if abs(c) > 1:
            smaller = dict(coeffs)
            smaller[var] = 1 if c > 0 else -1
            yield Affine(smaller, expr.const)


def _atom_variants(atom: Atom) -> Iterator[Formula]:
    for expr in _affine_variants(atom.constraint.expr):
        yield Atom(Constraint(expr, atom.constraint.kind))


def _stride_variants(stride: StrideAtom) -> Iterator[Formula]:
    if stride.modulus > 2:
        yield StrideAtom(2, stride.expr)
    for expr in _affine_variants(stride.expr):
        yield StrideAtom(stride.modulus, expr)


def _node_variants(node: Formula) -> Iterator[Formula]:
    """Strictly-smaller replacements for one node."""
    if isinstance(node, (And, Or)):
        kids = node.children
        for i in range(len(kids)):  # drop one operand
            rest = kids[:i] + kids[i + 1 :]
            yield _rebuild(node, list(rest))
        for child in kids:  # hoist one operand
            yield child
    elif isinstance(node, Not):
        yield node.child
    elif isinstance(node, _Quantifier):
        yield TrueF
        yield FalseF
        for value in (0, 1, -1):
            yield node.body.substitute_values(
                {v: value for v in node.variables}
            )
    elif isinstance(node, Atom):
        yield from _atom_variants(node)
    elif isinstance(node, StrideAtom):
        yield TrueF
        yield from _stride_variants(node)


def _formula_candidates(f: Formula) -> Iterator[Formula]:
    for path, node in _paths(f):
        for variant in _node_variants(node):
            yield _replace(f, path, variant)


def _case_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    # 1. Fewer symbol environments (down to one).
    if len(case.envs) > 1:
        for env in case.envs:
            yield case.with_envs((env,))
    # 2. A simpler polynomial, if any.
    if case.poly_text and case.poly_text != "1":
        yield case.with_poly_text("1")
        head = case.poly_text.split("+")[0].strip()
        if head and head != case.poly_text:
            yield case.with_poly_text(head)
    # 3. Structural formula edits, one at a time.
    for formula in _formula_candidates(case.formula):
        yield case.with_formula(formula)


def failure_kind(failure) -> str:
    """Coarse failure mode: ``mismatch`` or ``exception:<TypeName>``.

    Shrinking only accepts candidates that fail the *same way* as the
    original; otherwise dropping a bounding constraint can swap a DNF
    explosion for an unbounded-count error and the "minimal"
    counterexample no longer demonstrates the original bug.
    """
    message = failure.message
    if message.startswith("exception: "):
        return "exception:" + message.split(":")[1].strip()
    return "mismatch"


def _still_fails(case: FuzzCase, check: str, kind: Optional[str]) -> bool:
    from repro.testkit.checks import run_check

    for env in case.envs if case.envs else ({},):
        if on_frontier(oracle_points(case.formula, case.over, env)):
            return False  # oracle no longer exact; reject candidate
    failure = run_check(check, case)
    if failure is None:
        return False
    return kind is None or failure_kind(failure) == kind


def shrink_case(
    case: FuzzCase,
    check: str,
    max_attempts: int = 400,
    failure=None,
) -> FuzzCase:
    """Greedily minimize ``case`` while it keeps failing ``check``.

    With ``failure`` given (the original :class:`CheckFailure`), only
    candidates failing in the same mode are accepted.  Runs at most
    ``max_attempts`` candidate evaluations; returns the smallest
    failing case found (possibly the input unchanged).
    """
    kind = failure_kind(failure) if failure is not None else None
    best = case
    attempts = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _case_candidates(best):
            attempts += 1
            if attempts > max_attempts:
                break
            if _still_fails(candidate, check, kind):
                best = candidate
                progress = True
                break
    return best


__all__ = ["failure_kind", "shrink_case"]
