"""The shard router: one front door over N keyspace-sliced daemons.

:class:`ShardRouter` duck-types :class:`repro.serve.daemon.CountingDaemon`
for the wire front ends (``handle`` / ``draining`` / ``metrics`` plus
the pluggable ``healthz`` / ``stats_snapshot`` hooks), so
``python -m repro shardserve`` serves the exact HTTP + JSONL protocols
a single daemon does -- loadgen, the bench suite and every client work
unmodified against either.

The serve path, cheapest first:

1. **replica** -- the router computes the canonical content hash
   itself (:meth:`~repro.service.request.JobRequest.content_hash`, the
   same code the daemons run, so router and shard can never disagree)
   and answers settled hashes straight from the
   :class:`~repro.shard.replica.ReplicaStore` -- a warm hit with no
   shard hop.
2. **coalesced** -- the fleet in-flight table already has this hash:
   park on the owner shard's completion (``asyncio.shield``, exactly
   the daemon's waiter discipline) and re-stamp the response id.
   Combined with each daemon's own coalescing this makes duplicate
   suppression *fleet-wide*: N clients bursting alpha-variants of one
   query through the router cost one executor computation total.
3. **forwarded** -- route to the owner shard
   (:func:`~repro.shard.config.shard_of` on the hash prefix), retrying
   across worker restarts.  Settled ok-responses gossip into the
   replica before the in-flight entry is released -- the same
   settle-then-unregister ordering the daemon uses, so a duplicate
   arriving during settle finds the replica or the still-registered
   flight, never a second computation.

Every response is annotated with its owning ``"shard"`` index (a
volatile key, like ``"tier"``), so responses stay byte-identical to a
single daemon's modulo
:data:`~repro.service.batch.VOLATILE_RESPONSE_KEYS`.
"""

import asyncio
import os
import signal
import sys
import time
from typing import Mapping, Optional

from repro.presburger.parser import ParseError
from repro.qpoly.parse import PolynomialParseError
from repro.serve.daemon import OVERLOADED
from repro.serve.metrics import (
    LatencyHistogram,
    merge_serve_snapshots,
)
from repro.service.executor import BAD_REQUEST, PARSE_ERROR
from repro.service.request import JobRequest, RequestError
from repro.shard.config import ShardConfig, shard_of
from repro.shard.replica import ReplicaStore
from repro.shard.supervisor import ShardWorker, WorkerUnavailable

#: The owner shard stayed unreachable past the forward window (the
#: supervised restart did not land in time); maps to HTTP 500.
SHARD_UNAVAILABLE = "shard_unavailable"

#: Router-side answer tiers (the latency histogram keys).
ROUTER_TIERS = ("replica", "coalesced", "forwarded")

#: Router counter names (always all present, like the daemon's).
ROUTER_COUNTER_NAMES = (
    "requests",  # every request entering the router
    "replica_hits",  # answered from the router-side read replica
    "coalesced",  # waiters parked on a fleet in-flight computation
    "forwarded",  # requests routed to their owner shard
    "shed",  # refused: fleet in-flight table full or draining
    "front_errors",  # bad request / parse failures before routing
    "job_errors",  # forwarded requests that settled not-ok
    "shard_errors",  # owner shard unreachable past the forward window
    "cancelled_waiters",  # clients cancelled while parked on a flight
)


class RouterMetrics:
    """Router-side counters and per-tier latency histograms."""

    def __init__(self):
        self.started_monotonic = time.monotonic()
        self.counters = {name: 0 for name in ROUTER_COUNTER_NAMES}
        self.tiers = {tier: LatencyHistogram() for tier in ROUTER_TIERS}
        self.queue_probe = None

    def bump(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, tier: str, ms: float) -> None:
        self.tiers[tier].observe(ms)

    def uptime_seconds(self) -> float:
        return round(time.monotonic() - self.started_monotonic, 3)

    def queue_depth(self) -> int:
        probe = self.queue_probe
        if probe is None:
            return 0
        try:
            return int(probe())
        except Exception:  # pragma: no cover - defensive
            return 0

    def snapshot(self) -> dict:
        return {
            "uptime_seconds": self.uptime_seconds(),
            "queue_depth": self.queue_depth(),
            "counters": dict(self.counters),
            "tiers": {
                tier: hist.snapshot() for tier, hist in self.tiers.items()
            },
        }


class _Flight:
    """One fleet-wide in-flight computation and its waiter count."""

    __slots__ = ("task", "waiters")

    def __init__(self, task):
        self.task = task
        self.waiters = 1


class ShardRouter:
    """Hash-prefix router over a fleet of supervised shard daemons."""

    def __init__(self, config: Optional[ShardConfig] = None, workers=None):
        self.config = config or ShardConfig.from_env()
        self.metrics = RouterMetrics()
        self.metrics.queue_probe = lambda: len(self._inflight)
        self.replica = (
            ReplicaStore(
                limit=self.config.replica_limit,
                path=self.config.replica_path,
            )
            if self.config.replica
            else None
        )
        # Tests inject in-process workers; production uses supervised
        # subprocesses.  Anything with post/get/start/stop/ready works.
        self.workers = workers
        self._owns_workers = workers is None
        self._inflight: "dict[str, _Flight]" = {}
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self, log_stream=None) -> None:
        """Spawn (or adopt) the fleet; returns once every shard is up."""
        if self.workers is None:
            os.makedirs(self.config.cache_dir, exist_ok=True)
            self.workers = [
                ShardWorker(index, self.config, log_stream=log_stream)
                for index in range(self.config.shards)
            ]
            await asyncio.gather(*(w.start() for w in self.workers))
        self._draining = False

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Stop admitting, settle flights, SIGTERM-drain the fleet."""
        self._draining = True
        tasks = [flight.task for flight in self._inflight.values()]
        if tasks:
            done, pending = await asyncio.wait(
                tasks, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
        if self._owns_workers and self.workers is not None:
            await asyncio.gather(*(w.stop() for w in self.workers))
        if self.replica is not None:
            self.replica.close()

    # -- the route path ----------------------------------------------------

    async def handle(self, obj, tenant: str = "") -> dict:
        """Answer one raw request object; never raises for bad input."""
        t0 = time.monotonic()
        m = self.metrics
        m.bump("requests")
        if not isinstance(obj, Mapping):
            m.bump("front_errors")
            return self._error_response(
                None, BAD_REQUEST, "request must be a JSON object", t0
            )
        rid = obj.get("id")
        if self._draining:
            m.bump("shed")
            return self._error_response(
                rid, OVERLOADED, "router is draining", t0
            )
        try:
            req = JobRequest.from_json(obj)
        except RequestError as exc:
            m.bump("front_errors")
            return self._error_response(rid, BAD_REQUEST, str(exc), t0)
        try:
            key = req.content_hash()
        except (ParseError, PolynomialParseError) as exc:
            m.bump("front_errors")
            return self._error_response(req.id, PARSE_ERROR, str(exc), t0)
        except Exception as exc:
            m.bump("front_errors")
            return self._error_response(
                req.id, BAD_REQUEST, "%s: %s" % (type(exc).__name__, exc), t0
            )
        owner = shard_of(key, self.config.shards, self.config.prefix_bits)

        # Tier 1: the router-side read replica (no shard hop).
        if self.replica is not None:
            body = self.replica.get(key)
            if body is not None:
                m.bump("replica_hits")
                return self._rebuild(body, req.id, owner, t0)

        # Tier 2: park on a fleet in-flight computation.
        flight = self._inflight.get(key)
        if flight is not None:
            flight.waiters += 1
            m.bump("coalesced")
            response = await self._await_shared(flight)
            return self._restamp(response, req.id, "coalesced", t0)

        # Tier 3: forward to the owner shard.
        if len(self._inflight) >= self.config.queue_limit:
            m.bump("shed")
            return self._error_response(
                req.id,
                OVERLOADED,
                "router in-flight table full (%d computations)"
                % len(self._inflight),
                t0,
            )
        loop = asyncio.get_event_loop()
        flight = _Flight(
            loop.create_task(self._forward(key, owner, dict(obj), tenant))
        )
        self._inflight[key] = flight
        response = await self._await_shared(flight)
        m.bump("forwarded")
        if not response.get("ok"):
            m.bump("job_errors")
        self._observe("forwarded", t0)
        return dict(response)

    async def _await_shared(self, flight: _Flight) -> dict:
        """The daemon's shielded-waiter discipline, fleet-scoped."""
        try:
            return await asyncio.shield(flight.task)
        except asyncio.CancelledError:
            self.metrics.bump("cancelled_waiters")
            raise

    async def _forward(
        self, key: str, owner: int, obj: dict, tenant: str
    ) -> dict:
        """The single fleet-wide flight for one content hash."""
        try:
            try:
                _status, response = await self.workers[owner].post(
                    obj, tenant
                )
            except WorkerUnavailable as exc:
                self.metrics.bump("shard_errors")
                return {
                    "id": obj.get("id"),
                    "ok": False,
                    "error": {
                        "kind": SHARD_UNAVAILABLE,
                        "message": str(exc),
                    },
                    "cached": False,
                    "wall_ms": 0.0,
                    "attempts": 0,
                    "tier": "front",
                    "shard": owner,
                }
            response["shard"] = owner
            if self.replica is not None:
                self.replica.offer(key, response)
            return response
        finally:
            # Release only after the replica holds the answer, so a
            # duplicate arriving during settle finds the replica (or
            # the still-registered flight), never a second forward.
            self._inflight.pop(key, None)

    # -- response shaping --------------------------------------------------

    def _observe(self, tier: str, t0: float) -> None:
        self.metrics.observe(tier, (time.monotonic() - t0) * 1000.0)

    def _rebuild(self, body: dict, rid, owner: int, t0: float) -> dict:
        """A replica body re-stamped as this request's warm answer."""
        response = dict(body)
        response["id"] = rid
        response["cached"] = True
        response["wall_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        response["attempts"] = 0
        response["tier"] = "warm"
        response["shard"] = owner
        self._observe("replica", t0)
        return response

    def _restamp(self, response: dict, rid, tier: str, t0: float) -> dict:
        """A shared flight's response re-identified for one waiter."""
        out = dict(response)
        out["id"] = rid
        out["tier"] = tier
        out["wall_ms"] = round((time.monotonic() - t0) * 1000.0, 3)
        self._observe(tier, t0)
        return out

    def _error_response(self, rid, kind: str, message: str, t0: float) -> dict:
        return {
            "id": rid,
            "ok": False,
            "error": {"kind": kind, "message": message},
            "cached": False,
            "wall_ms": round((time.monotonic() - t0) * 1000.0, 3),
            "attempts": 0,
            "tier": "front",
        }

    # -- fleet introspection (plugged into the HTTP front end) -------------

    def healthz(self) -> dict:
        """Fleet health: the router is ok while any shard can answer."""
        shards = []
        for worker in self.workers or []:
            shards.append(
                {
                    "index": worker.index,
                    "ready": worker.ready.is_set(),
                    "port": worker.port,
                    "restarts": worker.restarts,
                }
            )
        ready = sum(1 for s in shards if s["ready"])
        return {
            "ok": not self._draining and ready == len(shards) and shards != [],
            "draining": self._draining,
            "uptime_seconds": self.metrics.uptime_seconds(),
            "queue_depth": self.metrics.queue_depth(),
            "shards_ready": ready,
            "shards": shards,
        }

    async def stats_snapshot(self) -> dict:
        """Aggregated fleet ``/stats``: engine counters summed, serve
        histograms merged associatively (see
        :func:`repro.serve.metrics.merge_serve_snapshots`), plus the
        router's own section and a per-shard breakdown.

        Shaped like a single daemon's ``/stats`` (engine counters at
        the top level, ``"serve"`` nested), so loadgen and dashboards
        read either unchanged.
        """
        workers = self.workers or []
        docs = await asyncio.gather(*(w.get("/stats") for w in workers))
        engine: dict = {}
        serve_docs = []
        shards = {}
        for worker, doc in zip(workers, docs):
            shards[str(worker.index)] = {
                "ready": worker.ready.is_set(),
                "port": worker.port,
                "restarts": worker.restarts,
                "reachable": doc is not None,
            }
            if doc is None:
                continue
            serve = doc.get("serve")
            if isinstance(serve, dict):
                serve_docs.append(serve)
                shards[str(worker.index)]["counters"] = serve.get(
                    "counters", {}
                )
            for name, value in doc.items():
                if name == "serve" or isinstance(value, bool):
                    continue
                if isinstance(value, (int, float)):
                    if name.endswith("_limit"):
                        engine[name] = max(engine.get(name, 0), value)
                    else:
                        engine[name] = engine.get(name, 0) + value
        snapshot = engine
        snapshot["serve"] = merge_serve_snapshots(serve_docs)
        snapshot["router"] = self.metrics.snapshot()
        if self.replica is not None:
            snapshot["router"]["replica"] = self.replica.info()
        snapshot["shards"] = shards
        return snapshot


# -- CLI entry ------------------------------------------------------------


async def _shardserve(config: ShardConfig, ready_stream=None) -> int:
    from repro.serve.http import HttpFrontend, JsonlFrontend

    stream = ready_stream if ready_stream is not None else sys.stderr
    router = ShardRouter(config)
    await router.start(log_stream=stream)
    http = HttpFrontend(router, config.host, config.http_port)
    await http.start()
    jsonl = None
    if config.jsonl_port is not None:
        jsonl = JsonlFrontend(router, config.host, config.jsonl_port)
        await jsonl.start()

    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for signame in ("SIGTERM", "SIGINT"):
        loop.add_signal_handler(getattr(signal, signame), stop.set)

    ready = "repro shardserve: router listening on http://%s:%d (%d shards)" % (
        config.host,
        http.port,
        config.shards,
    )
    if jsonl is not None:
        ready += ", jsonl on %s:%d" % (config.host, jsonl.port)
    print(ready, file=stream, flush=True)
    await stop.wait()

    print("repro shardserve: draining...", file=stream, flush=True)
    await http.stop()
    if jsonl is not None:
        await jsonl.stop()
    counters = dict(router.metrics.counters)
    restarts = sum(w.restarts for w in router.workers or [])
    await router.drain()
    print(
        "repro shardserve: drained; %d requests (%d replica, %d coalesced,"
        " %d forwarded, %d shed), %d worker restarts"
        % (
            counters["requests"],
            counters["replica_hits"],
            counters["coalesced"],
            counters["forwarded"],
            counters["shed"],
            restarts,
        ),
        file=stream,
        flush=True,
    )
    return 0


def shardserve_main(args) -> int:
    """Entry point behind ``python -m repro shardserve``."""
    config = ShardConfig.from_env(
        host=args.host,
        http_port=args.http_port,
        jsonl_port=args.jsonl_port,
        cache_dir=args.cache_dir,
        **{
            k: v
            for k, v in (
                ("shards", args.shards),
                ("prefix_bits", args.prefix_bits),
                ("replica", False if args.no_replica else None),
                ("replica_limit", args.replica_limit),
                ("queue_limit", args.queue_limit),
                ("health_interval", args.health_interval),
                ("forward_timeout", args.forward_timeout),
                ("drain_timeout", args.drain_timeout),
            )
            if v is not None
        }
    )
    return asyncio.run(_shardserve(config))


__all__ = [
    "ROUTER_COUNTER_NAMES",
    "ROUTER_TIERS",
    "RouterMetrics",
    "SHARD_UNAVAILABLE",
    "ShardRouter",
    "shardserve_main",
]
