"""Shard topology: hash-prefix keyspace slices and router tuning knobs.

The unit of ownership is the **canonical content hash** (see
:meth:`repro.service.request.JobRequest.content_hash`): a SHA-256 hex
digest whose leading ``prefix_bits`` bits, reduced modulo the shard
count, name the one shard that owns the request -- its cold
computation, its row in the persistent results store, and its resident
evalc/automaton artifacts.  Because the hash is alpha- and
order-invariant, every spelling of one logical query lands on the same
shard, which is what makes per-shard stores disjoint and fleet-wide
coalescing possible without any shard-to-shard traffic.

:class:`ShardSlice` is the ownership predicate shared by the router
(to pick a shard), the daemon (to refuse misrouted requests), and the
disk cache (to refuse misrouted writes); keeping all three on one
implementation means they can never disagree about who owns a key.

``REPRO_SHARD_*`` environment knobs mirror the ``REPRO_SERVE_*``
convention: explicit constructor arguments win, :meth:`ShardConfig.from_env`
layers the environment between the hard defaults and overrides.
"""

import os
from typing import Optional

#: Leading hash bits used for ownership (the prefix value is taken
#: from the first 64 bits of the digest, so bits must stay <= 64).
DEFAULT_PREFIX_BITS = 16
MAX_PREFIX_BITS = 64


def _prefix_value(key: str, bits: int) -> int:
    """The leading ``bits`` bits of a hex content hash, as an integer."""
    return int(key[:16], 16) >> (64 - bits)


def shard_of(key: str, count: int, bits: int = DEFAULT_PREFIX_BITS) -> int:
    """The shard index owning content hash ``key``.

    Every key is owned by exactly one shard: the map is a total
    function of the hash prefix, so the per-shard keyspaces partition
    the whole space (disjoint and complete).
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 1 <= bits <= MAX_PREFIX_BITS:
        raise ValueError(
            "prefix bits must be in [1, %d]" % MAX_PREFIX_BITS
        )
    return _prefix_value(key, bits) % count


class ShardSlice:
    """One shard's slice of the content-hash keyspace."""

    __slots__ = ("bits", "count", "index")

    def __init__(self, bits: int, count: int, index: int):
        if count < 1:
            raise ValueError("shard count must be >= 1")
        if not 0 <= index < count:
            raise ValueError(
                "shard index %d out of range for %d shards" % (index, count)
            )
        if not 1 <= bits <= MAX_PREFIX_BITS:
            raise ValueError(
                "prefix bits must be in [1, %d]" % MAX_PREFIX_BITS
            )
        self.bits = bits
        self.count = count
        self.index = index

    def owner(self, key: str) -> int:
        return _prefix_value(key, self.bits) % self.count

    def owns(self, key: str) -> bool:
        return self.owner(key) == self.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ShardSlice(bits=%d, count=%d, index=%d)" % (
            self.bits,
            self.count,
            self.index,
        )


def _env_int(name: str) -> Optional[int]:
    value = os.environ.get(name)
    return int(value) if value else None


def _env_float(name: str) -> Optional[float]:
    value = os.environ.get(name)
    return float(value) if value else None


def _env_bool(name: str) -> Optional[bool]:
    value = os.environ.get(name)
    if value is None or value == "":
        return None
    return value.strip().lower() not in ("0", "false", "no", "off")


class ShardConfig:
    """Router + fleet tuning knobs, with ``REPRO_SHARD_*`` env defaults.

    The worker daemons inherit their own ``REPRO_SERVE_*`` environment
    untouched, so per-shard admission control, worker pools and
    timeouts are tuned exactly like a standalone daemon's.
    """

    __slots__ = (
        "host",
        "http_port",
        "jsonl_port",
        "shards",
        "prefix_bits",
        "replica",
        "replica_limit",
        "replica_path",
        "queue_limit",
        "cache_dir",
        "health_interval",
        "restart_backoff",
        "restart_backoff_max",
        "forward_timeout",
        "drain_timeout",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        http_port: int = 8740,
        jsonl_port: Optional[int] = None,
        shards: int = 4,
        prefix_bits: int = DEFAULT_PREFIX_BITS,
        replica: bool = True,
        replica_limit: int = 4096,
        replica_path: Optional[str] = None,
        queue_limit: int = 256,
        cache_dir: str = ".repro-shards",
        health_interval: float = 1.0,
        restart_backoff: float = 0.25,
        restart_backoff_max: float = 5.0,
        forward_timeout: float = 300.0,
        drain_timeout: float = 30.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if not 1 <= prefix_bits <= MAX_PREFIX_BITS:
            raise ValueError(
                "prefix_bits must be in [1, %d]" % MAX_PREFIX_BITS
            )
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if replica_limit < 1:
            raise ValueError("replica_limit must be >= 1")
        self.host = host
        self.http_port = http_port
        self.jsonl_port = jsonl_port
        self.shards = shards
        self.prefix_bits = prefix_bits
        self.replica = replica
        self.replica_limit = replica_limit
        self.replica_path = replica_path
        self.queue_limit = queue_limit
        self.cache_dir = cache_dir
        self.health_interval = health_interval
        self.restart_backoff = restart_backoff
        self.restart_backoff_max = restart_backoff_max
        self.forward_timeout = forward_timeout
        self.drain_timeout = drain_timeout

    @classmethod
    def from_env(cls, **overrides) -> "ShardConfig":
        values = {
            "shards": _env_int("REPRO_SHARD_N"),
            "prefix_bits": _env_int("REPRO_SHARD_BITS"),
            "replica": _env_bool("REPRO_SHARD_REPLICA"),
            "replica_limit": _env_int("REPRO_SHARD_REPLICA_LIMIT"),
            "queue_limit": _env_int("REPRO_SHARD_QUEUE"),
            "health_interval": _env_float("REPRO_SHARD_HEALTH"),
            "restart_backoff": _env_float("REPRO_SHARD_BACKOFF"),
            "drain_timeout": _env_float("REPRO_SHARD_DRAIN"),
        }
        values = {k: v for k, v in values.items() if v is not None}
        values.update(overrides)
        return cls(**values)

    def slice_for(self, index: int) -> ShardSlice:
        return ShardSlice(self.prefix_bits, self.shards, index)


__all__ = [
    "DEFAULT_PREFIX_BITS",
    "MAX_PREFIX_BITS",
    "ShardConfig",
    "ShardSlice",
    "shard_of",
]
