"""Sharded multi-process serving: a router over N daemon workers.

One :mod:`repro.serve` daemon answers from a single asyncio loop
fronting one fork-per-job pool and one warm store, so its cold-path
throughput is capped by one process no matter how many clients
connect.  This package is the next scale step: ``python -m repro
shardserve`` runs a **router** process that owns the listening ports
and supervises N ``repro serve`` daemon workers, partitioning the
answer/artifact keyspace by canonical-content-hash prefix
(:class:`~repro.shard.config.ShardSlice`) so each shard owns a
disjoint slice of the persistent store and its resident
evalc/automaton artifacts.

The router speaks exactly the daemon's HTTP + JSONL protocols (it is
a drop-in target for ``python -m repro loadgen`` and any daemon
client) and adds two fleet-level performance layers:

* **cross-shard coalescing** -- the router holds a fleet in-flight
  table keyed by canonical content hash, so a request whose hash is
  already computing anywhere in the fleet parks on that completion
  instead of triggering a second computation;
* **warm-store replication** -- freshly settled answers gossip into a
  router-side read replica (:class:`~repro.shard.replica.ReplicaStore`),
  so repeat traffic is answered at the router without the shard hop.
  Replicas are caches: the owner shard's store remains the only write
  path, and entries are content-addressed (the hash covers the engine
  version), so a replica can be stale only by *absence*, never by
  value.

Workers are supervised (:mod:`repro.shard.supervisor`): spawned over
one shared store file with per-shard ownership environment (the
daemon's misrouted refusal and the disk cache's write guard keep the
slices disjoint inside the shared tables), health-checked via
``/healthz``, restarted with exponential backoff when they die, and
drained with a SIGTERM fan-out on shutdown.
"""

from repro.shard.config import ShardConfig, ShardSlice, shard_of
from repro.shard.replica import ReplicaStore
from repro.shard.router import RouterMetrics, ShardRouter, shardserve_main
from repro.shard.supervisor import ShardWorker

__all__ = [
    "ReplicaStore",
    "RouterMetrics",
    "ShardConfig",
    "ShardRouter",
    "ShardSlice",
    "ShardWorker",
    "shard_of",
    "shardserve_main",
]
