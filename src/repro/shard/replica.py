"""The router-side read replica of the fleet's warm stores.

Shards settle answers into their own persistent stores (the write
path); the router additionally keeps the freshly settled response
bodies in a bounded in-memory LRU -- and, when configured with a
path, writes them through to a ``replica`` diskcache table so router
restarts keep their warm set.  A replica hit answers a request at the
router itself: no shard hop, no sqlite read inside the owner daemon,
just a dict copy with fresh volatile fields.

**Consistency rule**: replicas are caches.  The owner shard's store is
the only write path for a content hash, and replica entries are
content-addressed by the same hash (which covers the engine and schema
versions), so a replica can be *missing* an answer but can never hold
a wrong one; there is no invalidation protocol to get wrong.

Stored bodies are the stable (volatile-key-stripped, id-stripped)
projection of a settled ok-response, so a rebuilt response is
byte-identical to the daemon's own warm answer modulo
:data:`~repro.service.batch.VOLATILE_RESPONSE_KEYS`.
"""

import sqlite3
from collections import OrderedDict
from typing import Optional

#: Response keys that must not be replicated: per-request identity and
#: per-serve volatile annotations, re-stamped at rebuild time.
_STRIPPED_KEYS = ("id", "cached", "wall_ms", "attempts", "tier", "shard")


def stable_body(response: dict) -> dict:
    """The replicable projection of a settled ok-response."""
    return {k: v for k, v in response.items() if k not in _STRIPPED_KEYS}


class ReplicaStore:
    """Bounded LRU of content hash -> stable response body."""

    def __init__(self, limit: int = 4096, path: Optional[str] = None):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._disk = None
        if path is not None:
            from repro.service.diskcache import DiskCache

            self._disk = DiskCache(path, max_entries=limit, table="replica")

    def get(self, key: str) -> Optional[dict]:
        """The stable body for ``key``, or None (LRU-touching)."""
        body = self._entries.get(key)
        if body is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return dict(body)
        if self._disk is not None:
            try:
                body = self._disk.get(key)
            except (sqlite3.Error, OSError):
                body = None
            if body is not None:
                self._remember(key, body)
                self.hits += 1
                return dict(body)
        self.misses += 1
        return None

    def offer(self, key: str, response: dict) -> None:
        """Gossip a freshly settled ok-response into the replica."""
        if not response.get("ok"):
            return  # failures are never replicated (mirrors the stores)
        body = stable_body(response)
        self._remember(key, body)
        self.stores += 1
        if self._disk is not None:
            try:
                self._disk.put(key, body)
            except (sqlite3.Error, OSError):
                pass  # the replica is an accelerator, never a fault line

    def _remember(self, key: str, body: dict) -> None:
        entries = self._entries
        entries[key] = body
        entries.move_to_end(key)
        while len(entries) > self.limit:
            entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def info(self) -> dict:
        return {
            "entries": len(self._entries),
            "limit": self.limit,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "persistent": self._disk is not None,
        }

    def close(self) -> None:
        if self._disk is not None:
            self._disk.close()
            self._disk = None


__all__ = ["ReplicaStore", "stable_body"]
