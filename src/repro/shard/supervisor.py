"""Shard worker supervision: spawn, health-check, restart, drain.

Each :class:`ShardWorker` owns one ``python -m repro serve`` child
process pinned to a keyspace slice via the ``REPRO_SHARD_INDEX`` /
``REPRO_SHARD_N`` / ``REPRO_SHARD_BITS`` environment (the only place
those are set -- a standalone daemon never sees an index, so a stray
``REPRO_SHARD_N`` in the router's shell cannot slice it).  The worker
binds port 0 and announces the real port on stderr; the supervisor
parses that ready line, then:

* relays the child's remaining stderr with a ``[shard-N]`` prefix so
  one router log tells the whole fleet's story;
* polls ``GET /healthz`` every ``health_interval`` seconds and kills a
  child that fails three consecutive probes (a restart, not an error);
* restarts an exited child with exponential backoff
  (``restart_backoff`` doubling up to ``restart_backoff_max``), reset
  once the replacement reports healthy;
* on drain, forwards SIGTERM and waits ``drain_timeout`` for the
  child's own graceful drain, escalating to SIGKILL.

Forwarding is retried: :meth:`ShardWorker.post` waits on the ready
event and re-sends on connection errors until ``forward_timeout``, so
a worker killed mid-request costs its clients latency, never an error.
Retrying a counting request is safe by construction -- requests are
idempotent, content-addressed, and coalesced/cached on the worker.

All shards share one sqlite store file (results + answers + automata
tables); disjointness comes from hash-prefix ownership, enforced
belt-and-braces by the daemon's misrouted refusal and the disk cache's
:class:`~repro.service.diskcache.MisroutedWriteError` guard.
"""

import asyncio
import json
import os
import re
import signal
import sys
from typing import Optional, Tuple

from repro.shard.config import ShardConfig

#: Consecutive failed health probes before the supervisor kills the
#: worker and lets the restart path replace it.
HEALTH_FAILURES = 3

#: Pause between forwarding retries while a worker is down.
RETRY_PAUSE = 0.05

_READY_RE = re.compile(r"listening on http://([^\s:]+):(\d+)")


class WorkerUnavailable(ConnectionError):
    """A shard stayed unreachable for the whole forward window."""


async def http_roundtrip(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    doc: Optional[dict] = None,
    tenant: str = "",
) -> Tuple[int, dict, bool]:
    """One HTTP/1.1 exchange on an open connection.

    Returns ``(status, body_doc, keep_alive)``.  Shared by the worker
    forwarding pool and tests; raises ``ConnectionError`` /
    ``asyncio.IncompleteReadError`` on a torn connection so callers
    can retry on a fresh one.
    """
    body = b"" if doc is None else json.dumps(doc).encode("utf-8")
    head = (
        "%s %s HTTP/1.1\r\n"
        "Host: shard\r\n"
        "Content-Type: application/json\r\n"
        "Content-Length: %d\r\n" % (method, path, len(body))
    )
    if tenant:
        head += "X-Repro-Tenant: %s\r\n" % tenant
    writer.write(head.encode("latin-1") + b"\r\n" + body)
    await writer.drain()

    line = await reader.readline()
    if not line:
        raise ConnectionError("worker closed the connection")
    parts = line.decode("latin-1").split()
    if len(parts) < 2 or not parts[1].isdigit():
        raise ConnectionError("malformed status line: %r" % line)
    status = int(parts[1])
    headers = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    payload = await reader.readexactly(length) if length else b""
    keep_alive = headers.get("connection", "keep-alive").lower() != "close"
    return status, json.loads(payload.decode("utf-8")), keep_alive


class ShardWorker:
    """One supervised ``repro serve`` child owning a keyspace slice."""

    def __init__(self, index: int, config: ShardConfig, log_stream=None):
        self.index = index
        self.config = config
        self.host = config.host
        self.port: Optional[int] = None
        #: Set while the child is accepting requests; cleared on exit.
        self.ready = asyncio.Event()
        self.restarts = 0
        self.proc: Optional[asyncio.subprocess.Process] = None
        self.log = log_stream if log_stream is not None else sys.stderr
        self._supervise_task: Optional[asyncio.Task] = None
        self._relay_task: Optional[asyncio.Task] = None
        self._stopping = False
        self._pool: "asyncio.LifoQueue[Tuple]" = asyncio.LifoQueue()
        self._generation = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Spawn the child and begin supervising; returns once ready."""
        self._supervise_task = asyncio.ensure_future(self._supervise())
        await asyncio.wait_for(self.ready.wait(), timeout=60.0)

    async def stop(self) -> None:
        """Graceful drain: SIGTERM, wait, SIGKILL fallback."""
        self._stopping = True
        proc = self.proc
        if proc is not None and proc.returncode is None:
            try:
                proc.send_signal(signal.SIGTERM)
            except ProcessLookupError:  # pragma: no cover - exit race
                pass
            try:
                await asyncio.wait_for(
                    proc.wait(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:  # pragma: no cover - stuck child
                self._log("worker %d did not drain; killing" % self.index)
                proc.kill()
                await proc.wait()
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            try:
                await self._supervise_task
            except asyncio.CancelledError:
                pass
            self._supervise_task = None
        self._flush_pool()
        self.ready.clear()

    def _log(self, message: str) -> None:
        print("repro shard: %s" % message, file=self.log, flush=True)

    # -- the supervise loop ------------------------------------------------

    def _command(self):
        store = os.path.join(self.config.cache_dir, "store.sqlite")
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            self.config.host,
            "--http-port",
            "0",
            "--cache",
            store,
            "--answer-cache",
            store,
            "--automaton-cache",
            store,
        ]

    def _environment(self):
        env = dict(os.environ)
        env["REPRO_SHARD_INDEX"] = str(self.index)
        env["REPRO_SHARD_N"] = str(self.config.shards)
        env["REPRO_SHARD_BITS"] = str(self.config.prefix_bits)
        return env

    async def _supervise(self) -> None:
        backoff = self.config.restart_backoff
        while not self._stopping:
            try:
                became_ready = await self._run_once()
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # spawn/parse failure: retry
                self._log(
                    "worker %d failed to start: %s" % (self.index, exc)
                )
                became_ready = False
            self.ready.clear()
            self._flush_pool()
            if self._stopping:
                break
            self.restarts += 1
            self._log(
                "worker %d exited; restarting in %.2fs (restart #%d)"
                % (self.index, backoff, self.restarts)
            )
            await asyncio.sleep(backoff)
            if became_ready:
                backoff = self.config.restart_backoff
            else:
                backoff = min(backoff * 2, self.config.restart_backoff_max)

    async def _run_once(self) -> bool:
        """One child lifetime; returns True if it ever became ready."""
        os.makedirs(self.config.cache_dir, exist_ok=True)
        self.proc = await asyncio.create_subprocess_exec(
            *self._command(),
            env=self._environment(),
            stderr=asyncio.subprocess.PIPE,
        )
        proc = self.proc
        self._generation += 1
        try:
            port = await asyncio.wait_for(
                self._await_ready_line(proc.stderr), timeout=30.0
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            if proc.returncode is None:  # pragma: no cover - hung child
                proc.kill()
            await proc.wait()
            return False
        self.port = port
        self.ready.set()
        self._log(
            "worker %d ready on http://%s:%d" % (self.index, self.host, port)
        )
        self._relay_task = asyncio.ensure_future(self._relay(proc.stderr))
        health = asyncio.ensure_future(self._health_loop(proc))
        try:
            await proc.wait()
        finally:
            health.cancel()
            if self._relay_task is not None:
                self._relay_task.cancel()
                self._relay_task = None
        return True

    async def _await_ready_line(self, stream) -> int:
        """Read child stderr until the 'listening on' line; return port."""
        while True:
            raw = await stream.readline()
            if not raw:
                raise asyncio.IncompleteReadError(b"", None)
            line = raw.decode("utf-8", "replace").rstrip()
            match = _READY_RE.search(line)
            if match:
                return int(match.group(2))
            self._log("[shard-%d] %s" % (self.index, line))

    async def _relay(self, stream) -> None:
        """Forward the child's stderr into the router log, prefixed."""
        try:
            while True:
                raw = await stream.readline()
                if not raw:
                    return
                self._log(
                    "[shard-%d] %s"
                    % (self.index, raw.decode("utf-8", "replace").rstrip())
                )
        except asyncio.CancelledError:
            pass

    async def _health_loop(self, proc) -> None:
        """Kill the child after HEALTH_FAILURES consecutive bad probes."""
        failures = 0
        try:
            while proc.returncode is None:
                await asyncio.sleep(self.config.health_interval)
                try:
                    status, doc, _ = await asyncio.wait_for(
                        self._once("GET", "/healthz"),
                        timeout=max(self.config.health_interval, 1.0),
                    )
                    healthy = status == 200 and doc.get("ok", False)
                except asyncio.CancelledError:
                    raise
                except Exception:
                    healthy = False
                failures = 0 if healthy else failures + 1
                if failures >= HEALTH_FAILURES:
                    self._log(
                        "worker %d failed %d health checks; recycling"
                        % (self.index, failures)
                    )
                    if proc.returncode is None:
                        proc.kill()
                    return
        except asyncio.CancelledError:
            pass

    # -- the forwarding pool -----------------------------------------------

    def _flush_pool(self) -> None:
        while True:
            try:
                _, _, writer = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                return
            writer.close()

    async def _once(
        self,
        method: str,
        path: str,
        doc: Optional[dict] = None,
        tenant: str = "",
    ) -> Tuple[int, dict, bool]:
        """One attempt on a pooled (or fresh) keep-alive connection."""
        if self.port is None:
            raise ConnectionError("shard %d has never been up" % self.index)
        generation = self._generation
        reader = writer = None
        while True:
            try:
                pooled_gen, reader, writer = self._pool.get_nowait()
            except asyncio.QueueEmpty:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
                break
            if pooled_gen == generation and not writer.is_closing():
                break
            writer.close()
        try:
            status, body, keep_alive = await http_roundtrip(
                reader, writer, method, path, doc, tenant
            )
        except BaseException:
            writer.close()
            raise
        if keep_alive and not writer.is_closing():
            self._pool.put_nowait((generation, reader, writer))
        else:
            writer.close()
        return status, body, keep_alive

    async def post(
        self, obj: dict, tenant: str = "", path: str = "/job"
    ) -> Tuple[int, dict]:
        """Forward one request, retrying across worker restarts.

        Waits on the ready event whenever the worker is down, so a
        mid-run kill parks callers until the supervised replacement is
        listening.  Gives up only after ``forward_timeout`` seconds.
        """
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.config.forward_timeout
        last: Optional[BaseException] = None
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise WorkerUnavailable(
                    "shard %d unreachable for %.1fs: %s"
                    % (self.index, self.config.forward_timeout, last)
                )
            try:
                await asyncio.wait_for(self.ready.wait(), timeout=remaining)
                status, body, _ = await self._once("POST", path, obj, tenant)
                return status, body
            except asyncio.TimeoutError as exc:
                last = exc
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                OSError,
                ValueError,
            ) as exc:
                # ValueError covers a body truncated by a dying worker.
                last = exc
                await asyncio.sleep(RETRY_PAUSE)

    async def get(self, path: str, timeout: float = 5.0) -> Optional[dict]:
        """Fetch a GET endpoint; None when the worker is unreachable."""
        try:
            status, body, _ = await asyncio.wait_for(
                self._once("GET", path), timeout=timeout
            )
        except (asyncio.TimeoutError, ConnectionError, OSError, ValueError):
            return None
        except asyncio.IncompleteReadError:
            return None
        return body if status == 200 else None


__all__ = [
    "HEALTH_FAILURES",
    "ShardWorker",
    "WorkerUnavailable",
    "http_roundtrip",
]
