"""E1 (§6 Example 1, Tawbi): Σ over 1<=j<=i<=n, j<=k<=m.

Paper: "our greater flexibility and our ability to eliminate redundant
constraints makes our techniques more efficient ... in this example,
we only needed to consider 2 terms rather than 3."
"""

from conftest import report
from repro.baselines import tawbi_count
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse

TEXT = "1 <= i <= n and 1 <= j <= i and j <= k <= m"


def test_ours_two_pieces(benchmark):
    result = benchmark(count, TEXT, ["i", "j", "k"])
    assert len(result.terms) == 2  # the paper's headline comparison
    for n in range(0, 5):
        for m in range(0, 6):
            want = sum(
                1
                for i in range(1, n + 1)
                for j in range(1, i + 1)
                for k in range(j, m + 1)
            )
            assert result.evaluate(n=n, m=m) == want
    report("E1 ours", ["pieces: 2 (paper: 2)", str(result)])


def test_tawbi_three_pieces(benchmark):
    (clause,) = to_dnf(parse(TEXT))

    def run():
        return tawbi_count(clause, ["k", "j", "i"])

    result, pieces = benchmark(run)
    assert pieces == 3  # the paper's count for Tawbi's method
    for n in range(0, 5):
        for m in range(0, 6):
            want = sum(
                1
                for i in range(1, n + 1)
                for j in range(1, i + 1)
                for k in range(j, m + 1)
            )
            assert result.evaluate({"n": n, "m": m}) == want
    report("E1 Tawbi baseline", ["pieces: 3 (paper: 3)"])
