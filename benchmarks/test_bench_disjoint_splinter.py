"""S2 (§5.2 / Figure 1): splintering elimination, overlapping vs disjoint.

The example: ∃β: 0 <= 3β - α <= 7 ∧ 1 <= α - 2β <= 5.  Exact
solutions: α = 3, 5 <= α <= 27, α = 29.  The overlapping algorithm's
pieces may share solutions; Figure 1's disjoint variant must not.
"""

from conftest import report
from repro.omega.affine import Affine
from repro.omega.constraints import Constraint
from repro.omega.eliminate import eliminate_exact, eliminate_exact_disjoint
from repro.omega.problem import Conjunct

SOLUTIONS = {3} | set(range(5, 28)) | {29}


def example():
    def geq(coeffs, const=0):
        return Constraint.geq(Affine(coeffs, const))

    return Conjunct(
        [
            geq({"b": 3, "a": -1}),
            geq({"b": -3, "a": 1}, 7),
            geq({"a": 1, "b": -2}, -1),
            geq({"a": -1, "b": 2}, 5),
        ]
    )


def coverage(pieces):
    hits = {}
    for k, piece in enumerate(pieces):
        for a in range(-5, 45):
            if piece.is_satisfied({"a": a}):
                hits.setdefault(a, []).append(k)
    return hits


def test_overlapping_elimination(benchmark):
    pieces = benchmark(eliminate_exact, example(), "b")
    hits = coverage(pieces)
    assert set(hits) == SOLUTIONS
    overlapped = sum(1 for v in hits.values() if len(v) > 1)
    report(
        "S2 overlapping splinters",
        [
            "pieces: %d, points covered more than once: %d"
            % (len(pieces), overlapped)
        ],
    )


def test_disjoint_elimination(benchmark):
    pieces = benchmark(eliminate_exact_disjoint, example(), "b")
    hits = coverage(pieces)
    assert set(hits) == SOLUTIONS
    assert all(len(v) == 1 for v in hits.values())  # Figure 1's guarantee
    report(
        "S2 disjoint splinters (Figure 1)",
        ["pieces: %d, all points covered exactly once" % len(pieces)],
    )
