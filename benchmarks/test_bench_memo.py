"""Answer memo: cold-vs-warm and memo-on-vs-memo-off.

Two workload shapes where subproblem answers genuinely recur:

* **Rename fleet** (splinter-heavy): the same guarded loop-nest count
  asked under several free-symbol vocabularies -- the compiler
  pattern of one subscript shape analyzed per array.  With the memo
  on, the first query computes and every variant is answered through
  the free-symbol rename; with it off, every variant recomputes.
* **Warm repeat** (residue-heavy): the same residue-class count asked
  three times in one process -- the service pattern of repeated
  queries.  Every ask after the first must be answered entirely from
  the memo (the memo-off baseline still rides the warm satisfiability
  cache, so the comparison is against the engine's best pre-existing
  reuse, not a strawman).

Each bench runs the memo-off baseline first on a cleared
satisfiability cache, then the memo-on run the same way, asserts the
answers are byte-identical, and requires >= 40% fewer satisfiability
calls (the acceptance floor; observed reductions are far larger).
Wall times land in BENCH_JSON via the conftest recorder.
"""

import json
import time

from conftest import report
from repro.core import count, stats
from repro.core.memo import clear_answer_memo, set_answer_memo
from repro.omega.constraints import reset_fresh_counter
from repro.omega.satisfiability import clear_sat_cache

SPLINTER_TEMPLATE = (
    "1 <= i <= %(a)s and 1 <= j <= %(b)s"
    " and 3*j <= 2*i + %(a)s and 2 | (i + j)"
)
FLEET = [
    {"a": "n", "b": "m"},
    {"a": "p", "b": "q"},
    {"a": "N", "b": "M"},
    {"a": "rows", "b": "cols"},
]

RESIDUE = (
    "1 <= i <= n and 1 <= j <= n and 4 | (i + j) and 3 | (i + 2*j)"
)


def _measured(fn):
    """(result, sat-call delta, wall seconds) on a cold sat cache."""
    clear_sat_cache()
    reset_fresh_counter()
    before = stats.stats_snapshot()["sat_calls"]
    start = time.perf_counter()
    out = fn()
    wall = time.perf_counter() - start
    sat = stats.stats_snapshot()["sat_calls"] - before
    return out, sat, wall


def _serialized(results):
    return [json.dumps(r.to_json(), sort_keys=True) for r in results]


def test_memo_rename_fleet_splinter_heavy():
    def fleet():
        return [
            count(SPLINTER_TEMPLATE % names, ["i", "j"]) for names in FLEET
        ]

    previous = set_answer_memo(0)
    try:
        off, sat_off, wall_off = _measured(fleet)
    finally:
        set_answer_memo(previous)
    clear_answer_memo()
    on, sat_on, wall_on = _measured(fleet)

    assert _serialized(on) == _serialized(off)
    for result, names in zip(on, FLEET):
        assert result.evaluate({names["a"]: 17, names["b"]: 11}) == 83

    reduction = 1 - sat_on / sat_off
    report(
        "memo_rename_fleet",
        [
            "memo off: %5d sat calls  %.3fs" % (sat_off, wall_off),
            "memo on:  %5d sat calls  %.3fs" % (sat_on, wall_on),
            "sat-call reduction: %.0f%%" % (100 * reduction),
        ],
    )
    assert reduction >= 0.40


def test_memo_warm_repeat_residue_heavy():
    def repeats():
        return [count(RESIDUE, ["i", "j"]) for _ in range(3)]

    previous = set_answer_memo(0)
    try:
        off, sat_off, wall_off = _measured(repeats)
    finally:
        set_answer_memo(previous)
    clear_answer_memo()
    on, sat_on, wall_on = _measured(repeats)

    assert _serialized(on) == _serialized(off)
    for result in on + off:
        assert result.evaluate({"n": 24}) == 48

    reduction = 1 - sat_on / sat_off
    report(
        "memo_warm_repeat",
        [
            "memo off: %5d sat calls  %.3fs" % (sat_off, wall_off),
            "memo on:  %5d sat calls  %.3fs" % (sat_on, wall_on),
            "sat-call reduction: %.0f%%" % (100 * reduction),
        ],
    )
    assert reduction >= 0.40


def test_memo_persistent_root_layer(tmp_path, monkeypatch):
    """Cross-process shape: a fresh memory memo warmed purely from disk."""
    monkeypatch.setenv(
        "REPRO_ANSWER_DB", str(tmp_path / "answers.sqlite")
    )
    cold, sat_cold, wall_cold = _measured(
        lambda: count(SPLINTER_TEMPLATE % FLEET[0], ["i", "j"])
    )
    clear_answer_memo()  # what a new process would start with
    warm, sat_warm, wall_warm = _measured(
        lambda: count(SPLINTER_TEMPLATE % FLEET[0], ["i", "j"])
    )
    assert _serialized([cold]) == _serialized([warm])
    assert sat_warm == 0
    report(
        "memo_persistent_roots",
        [
            "cold: %5d sat calls  %.3fs" % (sat_cold, wall_cold),
            "warm: %5d sat calls  %.3fs (disk root hit)" % (sat_warm, wall_warm),
        ],
    )
