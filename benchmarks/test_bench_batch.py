"""Batch service: parallel speedup and warm-cache re-runs.

A mixed 40-job batch (triangular counts, clause unions, polynomial
sums -- all structurally distinct, so the alpha-invariant dedup cannot
collapse them) is answered serially and on a 4-worker pool.  Both
wall times land in ``BENCH_JSON`` under their own test ids; the
speedup assertion only fires when the machine actually has >= 4 cores
(single-core CI runners record the numbers without judging them).
The warm-cache bench re-runs the same batch against a populated disk
cache and requires every job to be answered without computing.
"""

import json
import os
import time

import pytest

from conftest import report
from repro.service.batch import VOLATILE_RESPONSE_KEYS, run_batch
from repro.service.diskcache import DiskCache
from repro.service.request import JobRequest

N_JOBS = 40


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _tri(k):
    return JobRequest(
        "count",
        "1 <= i0 <= n and 1 <= i1 <= i0 + %d and 1 <= i2 <= i1"
        " and 1 <= i3 <= i2" % k,
        over=["i0", "i1", "i2", "i3"],
        id="tri-%d" % k,
    )


def _union(k):
    text = " or ".join(
        "(%d <= x <= %d + n)" % (3 * j + k, 3 * j + k + 5) for j in range(3)
    )
    return JobRequest("count", text, over=["x"], id="union-%d" % k)


def _sum(k):
    return JobRequest(
        "sum",
        "1 <= i <= n + %d and 1 <= j <= i" % k,
        over=["i", "j"],
        poly="i*j",
        id="sum-%d" % k,
    )


def mixed_batch():
    return [[_tri, _union, _sum][k % 3](k) for k in range(N_JOBS)]


def _run(workers, cache=None):
    start = time.perf_counter()
    responses, summary = run_batch(mixed_batch(), workers=workers, cache=cache)
    elapsed = time.perf_counter() - start
    assert summary.jobs == N_JOBS and summary.ok == N_JOBS
    assert summary.deduped == 0  # all 40 formulas must stay distinct
    assert all(r["ok"] for r in responses)
    return elapsed, responses


_TIMES = {}
_RESPONSES = {}


def test_serial_40_jobs():
    elapsed, responses = _run(workers=1)
    _TIMES["serial"] = elapsed
    _RESPONSES["serial"] = responses
    tri0 = next(r for r in responses if r["id"] == "tri-0")
    assert "n**4" in tri0["result"]
    report("BATCH serial", ["%d jobs in %.3fs" % (N_JOBS, elapsed)])


def test_parallel_4_workers():
    elapsed, responses = _run(workers=4)
    _TIMES["parallel"] = elapsed
    # Parallelism must not change any answer.
    stable = lambda r: {
        k: v for k, v in r.items() if k not in VOLATILE_RESPONSE_KEYS
    }
    if "serial" in _RESPONSES:
        assert [stable(r) for r in responses] == [
            stable(r) for r in _RESPONSES["serial"]
        ]
    report("BATCH 4 workers", ["%d jobs in %.3fs" % (N_JOBS, elapsed)])


def test_parallel_speedup():
    if "serial" not in _TIMES or "parallel" not in _TIMES:
        pytest.skip("timing tests did not run")
    speedup = _TIMES["serial"] / _TIMES["parallel"]
    cores = _cores()
    report(
        "BATCH speedup",
        [
            "serial %.3fs, 4 workers %.3fs -> %.2fx on %d cores"
            % (_TIMES["serial"], _TIMES["parallel"], speedup, cores)
        ],
    )
    if cores >= 4:
        assert speedup >= 2.0, (
            "expected >= 2x speedup with 4 workers on %d cores, got %.2fx"
            % (cores, speedup)
        )


def test_warm_cache_rerun(tmp_path):
    jobs = mixed_batch()
    with DiskCache(str(tmp_path / "bench-cache.sqlite")) as cache:
        cold_start = time.perf_counter()
        first, s1 = run_batch(jobs, workers=1, cache=cache)
        cold = time.perf_counter() - cold_start
        warm_start = time.perf_counter()
        second, s2 = run_batch(jobs, workers=1, cache=cache)
        warm = time.perf_counter() - warm_start
    assert s1.cache_misses == N_JOBS and s1.cache_hits == 0
    assert s2.cache_hits == N_JOBS and s2.cache_misses == 0
    assert all(r["cached"] for r in second)
    stable = lambda r: json.dumps(
        {k: v for k, v in r.items() if k not in VOLATILE_RESPONSE_KEYS},
        sort_keys=True,
    )
    assert [stable(r) for r in first] == [stable(r) for r in second]
    report(
        "BATCH warm cache",
        ["cold %.3fs, warm %.3fs (%.0fx)" % (cold, warm, cold / warm)],
    )
    assert warm < cold
