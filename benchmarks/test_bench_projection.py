"""E-proj (§2.1): projecting x = 6i + 9j - 7 onto x.

Paper: the solutions are "all numbers between 8 and 86 (inclusive)
that have remainder 2 when divided by 3, except for 11 and 83", i.e.
x = 8  ∨  (14 <= x <= 80 ∧ 3 | (x+1))  ∨  x = 86 in stride format.
"""

from conftest import report
from repro.presburger.disjoint import to_disjoint_dnf
from repro.presburger.parser import parse

TEXT = "exists i, j: 1 <= i <= 8 and 1 <= j <= 5 and x = 6*i + 9*j - 7"


def test_projection(benchmark):
    formula = parse(TEXT)
    clauses = benchmark(to_disjoint_dnf, formula)

    want = {6 * i + 9 * j - 7 for i in range(1, 9) for j in range(1, 6)}
    assert want == {
        x for x in range(8, 87) if x % 3 == 2 and x not in (11, 83)
    }
    hits = {}
    for k, clause in enumerate(clauses):
        for x in range(0, 120):
            if clause.is_satisfied({"x": x}):
                hits.setdefault(x, []).append(k)
    assert set(hits) == want
    assert all(len(v) == 1 for v in hits.values())  # disjoint
    report(
        "E-proj §2.1 (25 solutions, disjoint stride clauses)",
        ["%d disjoint clauses; solutions: %d" % (len(clauses), len(hits))]
        + [str(c) for c in clauses],
    )
