"""Dense-vs-dict constraint kernels: the PR 6 acceptance bench.

Three workload shapes stress exactly the paths the dense row substrate
rewrites, each timed once per backend (paired tests, so BENCH_JSON
records a wall-time entry for every (workload, backend) cell and the
speedup is diffable straight from the artifact):

* **normalize** -- wide conjuncts full of duplicate, parallel and
  opposed inequality rows: one ``normalize_rows`` sweep against the
  dict path's per-constraint grouping and Affine rebuilding.
* **satisfiability** -- Fourier-Motzkin-heavy conjuncts (every bound
  pair has non-unit coefficients on a shared column, so elimination
  goes through dark shadows) solved on a cold satisfiability cache.
* **fm shadow** -- a single dark-shadow projection over many bound
  pairs with wide rows: the incremental ``fm_combine`` against the
  dict path's ``alpha * b - beta * a`` Affine arithmetic.

Every paired run also records its result; the closing test asserts the
two backends produced *identical* values (the byte-identity contract)
and that dense beat dict on every workload.  The committed
``BENCH_PR6.json`` snapshot shows the measured reduction (>= 2x on the
reference machine); the in-test floor is deliberately looser so noisy
CI boxes do not flake.
"""

import gc
import time

from conftest import record_extra, report
from repro.core.memo import clear_answer_memo
from repro.omega import Affine, Conjunct, Constraint, set_kernels_backend
from repro.omega.eliminate import dark_shadow
from repro.omega.satisfiability import clear_sat_cache, satisfiable

#: (workload, backend) -> (serialized result, wall seconds); filled by
#: the paired tests, read by the closing identity/speedup test.
_RUNS = {}

_WIDE = ["x%d" % i for i in range(8)]


def _parallel_constraints(groups=150):
    """Duplicate/parallel/opposed GEQ rows over 8 variables.

    Each group contributes three scaled copies of one direction (gcd
    reduction collapses them onto a single canonical row) plus the
    opposed direction, so a raw block of ``4 * groups`` rows
    normalizes down to a two-row interval.
    """
    base = {v: (i % 5) - 2 or 3 for i, v in enumerate(_WIDE)}
    cons = []
    for k in range(groups):
        for s in (1, 2, 3):
            cons.append(
                Constraint.geq(
                    Affine({v: s * c for v, c in base.items()}, s * (k % 60))
                )
            )
        cons.append(
            Constraint.geq(
                Affine({v: -c for v, c in base.items()}, 500 - (k % 25))
            )
        )
    return cons


def _fm_sat_constraints(pairs=8, width=5):
    """FM-heavy satisfiability: non-unit bounds on z over a box."""
    vs = ["v%d" % i for i in range(width)]
    cons = []
    for k in range(pairs):
        lo = {"z": 2 + (k % 2)}
        up = {"z": -(2 + ((k + 1) % 2))}
        for i, v in enumerate(vs):
            lo[v] = ((k + i) % 3) - 1 or 1
            up[v] = ((k * 3 + i) % 3) - 1 or -1
        cons.append(Constraint.geq(Affine(lo, k % 11)))
        cons.append(Constraint.geq(Affine(up, (k * 2) % 13)))
    for v in vs:
        cons.append(Constraint.geq(Affine({v: 1}, 8)))
        cons.append(Constraint.geq(Affine({v: -1}, 8)))
    return cons


def _fm_shadow_conjunct(pairs=18, width=6):
    """Many (lower, upper) pairs with wide rows for one shadow step."""
    vs = ["v%d" % i for i in range(width)]
    cons = []
    for k in range(pairs):
        lo = {"z": 2 + (k % 3)}
        up = {"z": -(2 + ((k + 1) % 3))}
        for i, v in enumerate(vs):
            lo[v] = ((k + i) % 7) - 3 or 1
            up[v] = ((k * 3 + i) % 5) - 2 or 2
        cons.append(Constraint.geq(Affine(lo, k % 11)))
        cons.append(Constraint.geq(Affine(up, (k * 2) % 13)))
    for v in vs:
        cons.append(Constraint.geq(Affine({v: 1}, 40)))
        cons.append(Constraint.geq(Affine({v: -1}, 40)))
    return Conjunct(cons)


def _serialize_conjunct(conj):
    if conj is None:
        return "None"
    return ";".join(str(c) for c in conj.constraints)


def _normalize_workload():
    cons = _parallel_constraints()
    instances = [Conjunct(cons) for _ in range(40)]
    start = time.perf_counter()
    normalized = [c.normalize() for c in instances]
    wall = time.perf_counter() - start
    return _serialize_conjunct(normalized[-1]), wall


def _satisfiability_workload():
    cons = _fm_sat_constraints()
    instances = [Conjunct(cons) for _ in range(6)]
    verdicts = []
    start = time.perf_counter()
    for c in instances:
        clear_sat_cache()
        verdicts.append(satisfiable(c))
    wall = time.perf_counter() - start
    return repr(verdicts), wall


def _fm_shadow_workload():
    template = _fm_shadow_conjunct()
    instances = [
        Conjunct(template.constraints, template.wildcards) for _ in range(30)
    ]
    start = time.perf_counter()
    shadows = [dark_shadow(c, "z") for c in instances]
    wall = time.perf_counter() - start
    return _serialize_conjunct(shadows[-1]), wall


_WORKLOADS = {
    "normalize": _normalize_workload,
    "satisfiability": _satisfiability_workload,
    "fm_shadow": _fm_shadow_workload,
}


def _run(workload, backend):
    previous = set_kernels_backend(backend)
    try:
        # Earlier bench modules leave large answer-memo heaps behind;
        # collect before timing so GC pauses don't land inside a rep.
        clear_answer_memo()
        clear_sat_cache()
        gc.collect()
        fn = _WORKLOADS[workload]
        fn()  # warm-up: imports, caches, allocator
        result, wall = min(
            (fn() for _ in range(3)), key=lambda pair: pair[1]
        )
    finally:
        set_kernels_backend(previous)
    _RUNS[(workload, backend)] = (result, wall)


def test_kernels_normalize_dict():
    _run("normalize", "dict")


def test_kernels_normalize_dense():
    _run("normalize", "dense")


def test_kernels_satisfiability_dict():
    _run("satisfiability", "dict")


def test_kernels_satisfiability_dense():
    _run("satisfiability", "dense")


def test_kernels_fm_shadow_dict():
    _run("fm_shadow", "dict")


def test_kernels_fm_shadow_dense():
    _run("fm_shadow", "dense")


def test_kernels_identity_and_speedup():
    rows = []
    summary = {}
    for workload in _WORKLOADS:
        dict_result, dict_wall = _RUNS[(workload, "dict")]
        dense_result, dense_wall = _RUNS[(workload, "dense")]
        assert dense_result == dict_result, workload
        ratio = dict_wall / dense_wall if dense_wall else float("inf")
        rows.append(
            "%-15s dict %.4fs  dense %.4fs  speedup %.2fx"
            % (workload, dict_wall, dense_wall, ratio)
        )
        summary[workload] = {
            "dict_seconds": round(dict_wall, 6),
            "dense_seconds": round(dense_wall, 6),
            "speedup": round(ratio, 2),
        }
        # Loose in-test floor; the committed BENCH_PR6.json records the
        # actual measured reduction (>= 2x on the reference machine).
        assert dense_wall < dict_wall, rows[-1]
    # The per-test wall includes untimed instance construction shared
    # by both backends; the inner workload walls are the acceptance
    # numbers, so publish them in the artifact too.
    record_extra("kernels_dense_vs_dict", summary)
    report("kernels: dense vs dict", rows)
