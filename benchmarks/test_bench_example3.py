"""E3 (§6 Example 3, HP's second example): Σ over the min(i, 2n-j) loop.

Σ over 1<=i<=2n, 1<=j<=i, i+j<=2n.  Paper: "easily handled by our
system ... = (Σ : 1 <= n : n²)"; HP's technique needs 15 steps.
"""

from conftest import report
from repro.baselines import hp_nested_sum
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse

TEXT = "1 <= i <= 2*n and 1 <= j <= i and i + j <= 2*n"


def brute(n):
    return sum(
        1
        for i in range(1, 2 * n + 1)
        for j in range(1, i + 1)
        if i + j <= 2 * n
    )


def test_ours_n_squared(benchmark):
    def run():
        return count(TEXT, ["i", "j"]).simplified()

    result = benchmark(run)
    (term,) = result.terms
    assert str(term.value) == "n**2"  # the paper's closed form
    for n in range(0, 10):
        assert result.evaluate(n=n) == brute(n) == (n * n if n >= 0 else 0)
    report("E3 ours", [str(result)])


def test_hp_baseline(benchmark):
    (clause,) = to_dnf(parse(TEXT))
    expr = benchmark(hp_nested_sum, clause, ["j", "i"], 1)
    for n in range(0, 10):
        assert expr.evaluate({"n": n}) == brute(n)
    report(
        "E3 HP baseline",
        ["HP expression nodes: %d (ours: single term n**2)" % expr.size()],
    )
