"""E5 (§6 Example 5 + Figure 2): the SOR loop's footprint.

Paper (N = 500): 249996 distinct memory locations, 16000 cache lines.
Symbolically: (Σ : N >= 3 : N² - 4) memory locations, and
N(1 + (N-2)÷16) + (N mod 16 = 1 ∧ N >= 17 : N - 2) cache lines.
"""

import pytest

from conftest import report
from repro.apps import (
    ArrayRef,
    Loop,
    LoopNest,
    Statement,
    cache_lines_touched,
    memory_locations_touched,
)
from repro.core import count
from repro.qpoly import Polynomial

FIVE_POINT = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]


def sor():
    return LoopNest(
        [Loop("i", 2, "N - 1"), Loop("j", 2, "N - 1")],
        [
            Statement(
                flops=6,
                refs=[
                    ArrayRef("a", ["i", "j"]),
                    ArrayRef("a", ["i - 1", "j"]),
                    ArrayRef("a", ["i + 1", "j"]),
                    ArrayRef("a", ["i", "j - 1"]),
                    ArrayRef("a", ["i", "j + 1"]),
                ],
            )
        ],
    )


def brute_locations(N):
    return {
        (i + di, j + dj)
        for i in range(2, N)
        for j in range(2, N)
        for di, dj in FIVE_POINT
    }


def test_memory_locations_numeric(benchmark):
    result = benchmark(memory_locations_touched, sor(), "a")
    assert result.evaluate(N=500) == 249996  # the paper's Figure 2
    # the loop-nest route compacts to exactly the paper's closed form
    compact = result.compacted()
    (term,) = compact.terms
    n = Polynomial.variable("N")
    assert term.value == n * n - 4
    assert term.guard.is_satisfied({"N": 3})
    report(
        "E5 SOR memory (N=500)",
        ["249996 (paper: 249996)", "compacted: %s" % compact],
    )


def test_memory_locations_symbolic_form(benchmark):
    """Via the paper's §5.1 summarized region the answer is a single
    clause (Σ : N >= 3 : N² - 4)."""
    text = (
        "1 <= x and 1 <= y and x <= N and y <= N and 3 <= x + y and "
        "x + y <= 2*N - 1 and 2 - N <= x - y and x - y <= N - 2"
    )

    def run():
        return count(text, ["x", "y"]).simplified()

    result = benchmark(run)
    (term,) = result.terms
    n = Polynomial.variable("N")
    assert term.value == n * n - 4
    for N in range(1, 10):
        assert result.evaluate(N=N) == len(brute_locations(N))
    report("E5 SOR memory symbolic", [str(result), "(paper: N >= 3 : N² - 4)"])


def test_cache_lines_numeric(benchmark):
    def run():
        return cache_lines_touched(sor(), "a", line_size=16)

    result = benchmark(run)
    assert result.evaluate(N=500) == 16000  # the paper's figure
    # symbolic spot checks against brute force, incl. the N mod 16 = 1
    # extra-term regime the paper calls out
    for N in (3, 16, 17, 33, 49, 100):
        want = len({((x - 1) // 16, y) for x, y in brute_locations(N)})
        assert result.evaluate(N=N) == want, N
    report("E5 SOR cache lines (N=500)", ["16000 (paper: 16000)"])


def test_flops_and_balance(benchmark):
    from repro.apps import count_flops

    flops = benchmark(count_flops, sor())
    assert flops.evaluate(N=500) == 6 * 498 * 498
    mem = memory_locations_touched(sor(), "a")
    ratio = flops.evaluate(N=500) / mem.evaluate(N=500)
    assert 5.9 < ratio < 6.0  # ~6 flops per location: low reuse
    report(
        "E5 computation/memory balance",
        ["flops/location at N=500: %.3f" % ratio],
    )
