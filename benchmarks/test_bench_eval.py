"""Evalc throughput: interpreted tree-walk vs compiled evaluator.

The paper's applications (§1.1) all end the same way: a symbolic
answer is computed once, then *evaluated many times* -- at every
processor count, every trip count, every cache size.  PR 4's evalc
compiler targets exactly that loop, so this bench measures it
directly on two ``apps/`` workloads:

* triangular iteration count (one symbol, polynomial pieces), and
* strided flop count (two symbols, mod-atom residue classes).

Each workload is served two ways -- single-point ``.at`` calls and a
10k-point ``table()`` sweep -- and compared against the interpreted
path on a subsample (the tree-walk is ~3 orders of magnitude slower,
so the full 10k interpreted sweep would dominate the bench).  The
contract asserted here is the PR 4 acceptance bar: bit-for-bit equal
values and >= 10x on the 10k-point table.

Snapshot: ``BENCH_JSON=BENCH_PR4.json pytest benchmarks/ -q``.
"""

import time

from conftest import report
from repro.apps import Loop, LoopNest, Statement
from repro.apps.counting import count_flops, count_iterations
from repro.evalc import compile_sum

#: Size of the table() sweep the acceptance bar is stated over.
N_POINTS = 10000

#: Interpreted baseline sample size (per-point cost is extrapolated).
INTERP_SAMPLE = 200

#: The acceptance floor; measured speedups are ~100-1000x.
MIN_SPEEDUP = 10.0


def _triangular():
    return LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "i")], [Statement(flops=2)]
    )


def _strided():
    return LoopNest(
        [Loop("i", 1, "n", step=2), Loop("j", "i", "m")],
        [Statement(flops=3)],
    )


def _per_point_interpreted(result, var, sample, fixed):
    env = dict(fixed)
    start = time.perf_counter()
    values = []
    for v in sample:
        env[var] = v
        values.append((v, result.evaluate(env)))
    elapsed = time.perf_counter() - start
    return elapsed / len(values), values


def _speedup_report(name, interp_pp, compiled_pp):
    rows = [
        "interpreted: %8.3f us/point (sampled %d points)"
        % (interp_pp * 1e6, INTERP_SAMPLE),
        "compiled:    %8.3f us/point (full %d-point table)"
        % (compiled_pp * 1e6, N_POINTS),
        "speedup:     %8.1fx (floor %.0fx)"
        % (interp_pp / compiled_pp, MIN_SPEEDUP),
    ]
    report(name, rows)


def test_eval_table_triangular(benchmark):
    """10k-point table() of the triangular iteration count."""
    result = count_iterations(_triangular())
    compiled = compile_sum(result)
    values = range(N_POINTS)

    table = benchmark(lambda: compiled.table("n", values))
    assert len(table) == N_POINTS
    assert table[1000] == (1000, 1000 * 1001 // 2)

    sample = range(0, N_POINTS, N_POINTS // INTERP_SAMPLE)
    interp_pp, want = _per_point_interpreted(result, "n", sample, {})
    lookup = dict(table)
    for v, c in want:
        assert lookup[v] == c

    start = time.perf_counter()
    compiled.table("n", values)
    compiled_pp = (time.perf_counter() - start) / N_POINTS

    _speedup_report("PR4 eval: triangular table", interp_pp, compiled_pp)
    assert interp_pp / compiled_pp >= MIN_SPEEDUP


def test_eval_table_strided_flops(benchmark):
    """10k-point table() of a strided two-symbol flop count."""
    result = count_flops(_strided())
    compiled = compile_sum(result)
    values = range(N_POINTS)

    table = benchmark(lambda: compiled.table("n", values, m=750))
    assert len(table) == N_POINTS

    sample = range(0, N_POINTS, N_POINTS // INTERP_SAMPLE)
    interp_pp, want = _per_point_interpreted(
        result, "n", sample, {"m": 750}
    )
    lookup = dict(table)
    for v, c in want:
        assert lookup[v] == c

    start = time.perf_counter()
    compiled.table("n", values, m=750)
    compiled_pp = (time.perf_counter() - start) / N_POINTS

    _speedup_report("PR4 eval: strided flops table", interp_pp, compiled_pp)
    assert interp_pp / compiled_pp >= MIN_SPEEDUP


def test_eval_points_single(benchmark):
    """Single-point .at() calls (the service's evaluate-job hot path)."""
    result = count_flops(_strided())
    compiled = compile_sum(result)
    envs = [{"n": n, "m": 3 * n + 7} for n in range(512)]

    got = benchmark(lambda: compiled.many(envs))

    sample = envs[:: len(envs) // 64]
    start = time.perf_counter()
    want = [result.evaluate(env) for env in sample]
    interp_pp = (time.perf_counter() - start) / len(sample)
    for env, value in zip(sample, want):
        assert compiled.at(env) == value
    assert [compiled.at(env) for env in sample] == want
    assert len(got) == len(envs)

    start = time.perf_counter()
    compiled.many(envs)
    compiled_pp = (time.perf_counter() - start) / len(envs)

    _speedup_report("PR4 eval: single points", interp_pp, compiled_pp)
    assert interp_pp / compiled_pp >= MIN_SPEEDUP
