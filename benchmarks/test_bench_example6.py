"""E6 (§6 Example 6): Σ over 1 <= i, j <= n, 2i <= 3j.

Paper's final simplified answer: (Σ : 1 <= n : (3n² + 2n - n mod 2)/4),
reached by splintering on the parity of 3j, summing, relaxing the
guard (the first clause's value is 0 at n = 1) and recombining with
(n mod 2)² = n mod 2.
"""

from fractions import Fraction

from conftest import report
from repro.core import count
from repro.qpoly import ModAtom, Polynomial

TEXT = "1 <= i and 1 <= j <= n and 2*i <= 3*j"


def brute(n):
    return sum(
        1
        for j in range(1, n + 1)
        for i in range(1, (3 * j) // 2 + 1)
    )


def test_example6(benchmark):
    def run():
        return count(TEXT, ["i", "j"]).simplified()

    result = benchmark(run)
    (term,) = result.terms
    n = Polynomial.variable("n")
    m = Polynomial.atom(ModAtom({"n": 1}, 0, 2))
    assert term.value == (3 * n * n + 2 * n - m) / 4  # the paper's answer
    for k in range(0, 16):
        assert result.evaluate(n=k) == brute(k)
    report(
        "E6",
        [str(result), "(paper: (3n² + 2n - n mod 2)/4 for n >= 1)"],
    )
