"""A2 (§1.1): load balance and balanced chunk scheduling.

"determine whether a parallel loop is load balanced [TF92]; given an
unbalanced loop, assign different number of iterations to each
processor so that each processor gets the same total number of flops
(balanced chunk-scheduling, as described in [HP93a])."
"""

from conftest import report
from repro.apps import (
    Loop,
    LoopNest,
    Statement,
    balanced_chunks,
    is_load_balanced,
)


def triangular():
    return LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "i")], [Statement(flops=2)]
    )


def test_balance_detection(benchmark):
    rect = LoopNest(
        [Loop("i", 1, "n"), Loop("j", 1, "m")], [Statement(flops=3)]
    )

    def run():
        return is_load_balanced(rect), is_load_balanced(triangular())

    (rect_ok, rect_per), (tri_ok, tri_per) = benchmark(run)
    assert rect_ok and not tri_ok
    report(
        "A2 balance detection",
        [
            "rectangular per-iteration: %s -> balanced" % rect_per,
            "triangular per-iteration:  %s -> unbalanced" % tri_per,
        ],
    )


def test_balanced_chunking(benchmark):
    def run():
        return balanced_chunks(triangular(), 4, {"n": 1000})

    chunks = benchmark(run)
    total = sum(c[2] for c in chunks)
    assert total == 1000 * 1001  # 2 flops x n(n+1)/2 iterations
    # near-equal work: within one outer iteration (2n flops) of ideal
    for _, _, flops in chunks:
        assert abs(flops - total / 4) <= 2 * 1000
    # chunk sizes shrink: sqrt-law boundaries (~n/2, ~n/sqrt(2))
    sizes = [b - a + 1 for a, b, _ in chunks]
    assert sizes[0] > sizes[1] > sizes[2] > sizes[3]
    assert abs(chunks[0][1] - 500) <= 2  # first cut near n/2
    report(
        "A2 balanced chunks (n=1000, P=4)",
        ["chunks: %s" % (chunks,), "sizes: %s" % (sizes,)],
    )
