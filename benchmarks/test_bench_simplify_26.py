"""E0 (§2.6): simplifying the paper's quantified formula.

Paper: "our current implementation requires 12 milliseconds on a Sun
Sparc IPX" to simplify the two-negated-existentials formula to
(1 = i' = i <= 2n) ∨ (1 <= i' = i = 2n).  We reproduce the shape (two
clauses, same solution set); the wall-clock is whatever a 2020s machine
gives and is reported by the benchmark fixture.
"""

from conftest import report
from repro.presburger.parser import parse
from repro.presburger.simplify import simplify

TEXT = (
    "1 <= i <= 2*n and 1 <= ip <= 2*n and i = ip and "
    "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
    "     i2 <= i and i2 = ip and 2*j2 = i2) and "
    "not (exists i2, j2: 1 <= i2 <= 2*n and 1 <= j2 <= n - 1 and "
    "     i2 <= i and i2 = ip and 2*j2 + 1 = i2)"
)


def test_simplify_section_2_6(benchmark):
    formula = parse(TEXT)
    out = benchmark(simplify, formula)
    assert len(out) == 2  # the paper's two clauses
    for n in range(1, 5):
        got = {
            (i, ip)
            for i in range(1, 2 * n + 1)
            for ip in range(1, 2 * n + 1)
            if any(c.is_satisfied({"i": i, "ip": ip, "n": n}) for c in out)
        }
        assert got == {(1, 1), (2 * n, 2 * n)}
    report(
        "E0 §2.6 simplification (paper: 12 ms on SPARC IPX)",
        ["clause %d: %s" % (k, c) for k, c in enumerate(out)],
    )
