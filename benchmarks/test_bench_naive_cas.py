"""T2: the Mathematica-style naive answer vs the guarded answer.

Paper (introduction): Mathematica reports Σ_{i=1}^{n} Σ_{j=i}^{m} 1 as
n(2m - n + 1)/2, "valid only if 1 <= n <= m.  If 1 <= m < n, the
answer is m(m+1)/2."
"""

from fractions import Fraction

from conftest import report
from repro.baselines import naive_nested_sum
from repro.core import count

TEXT = "1 <= i <= n and i <= j <= m"


def test_naive_vs_guarded(benchmark):
    def run():
        naive = naive_nested_sum([("i", "1", "n"), ("j", "i", "m")], 1)
        ours = count(TEXT, ["i", "j"])
        return naive, ours

    naive, ours = benchmark(run)
    rows = ["naive (one polynomial, no guards): %s" % naive,
            "ours  (guarded pieces):            %s" % ours]

    wrong_points = 0
    for n in range(0, 9):
        for m in range(0, 9):
            truth = sum(1 for i in range(1, n + 1) for j in range(i, m + 1))
            assert ours.evaluate(n=n, m=m) == truth
            if naive.evaluate({"n": n, "m": m}) != truth:
                wrong_points += 1
    rows.append("naive wrong on %d of 81 sampled (n, m) points" % wrong_points)
    report("T2 naive CAS comparison", rows)

    # the paper's two regimes
    assert naive.evaluate({"n": 3, "m": 5}) == Fraction(3 * (2 * 5 - 3 + 1), 2)
    assert ours.evaluate(n=5, m=3) == 3 * 4 // 2  # m(m+1)/2 regime
    assert naive.evaluate({"n": 5, "m": 3}) != 6  # and naive disagrees
    assert wrong_points > 0
