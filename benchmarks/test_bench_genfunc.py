"""Recursion vs generating-function backend: the PR 8 acceptance bench.

Two workload families stress exactly the shapes where Pugh's splinter
recursion does work proportional to coefficient size while the cone
pipeline's work depends only on the number of constraints:

* **large coefficients** -- triangles/quadrilaterals with big coprime
  coefficients (``23*i + 31*j <= 500`` and friends).  The recursion
  expands hundreds of residue cases; Brion's theorem needs one signed
  cone per vertex regardless of the numbers.
* **deep splinter** -- quantified stride constraints
  (``exists k: A*i <= B*k <= A*i + C``) whose projection splinters
  under exact elimination.

Each family is timed once per backend (paired tests, so BENCH_JSON
records a wall-time entry for every (family, backend) cell) on cold
caches.  The closing test asserts the two backends produced identical
counts -- the differential contract this PR exists to enforce -- and
publishes the inner walls via ``record_extra`` so the speedup is
diffable straight from the artifact.  The committed ``BENCH_PR8.json``
snapshot shows the measured reduction; the in-test assertion is
equality-only so noisy CI boxes cannot flake on a timing inversion.
"""

import gc
import time

from conftest import record_extra, report
from repro.core import count
from repro.core.memo import clear_answer_memo
from repro.omega.constraints import reset_fresh_counter
from repro.omega.satisfiability import clear_sat_cache

#: (family, backend) -> (counts tuple, wall seconds); filled by the
#: paired tests, read by the closing identity/speedup test.
_RUNS = {}

_LARGE_COEFF = [
    (
        "0 <= i and 0 <= j and %d*i + %d*j <= %d and %d*i <= %d*j + %d"
        % (a, b, n, c, d, m),
        ("i", "j"),
    )
    for (a, b, n, c, d, m) in [
        (23, 31, 500, 17, 13, 90),
        (41, 57, 900, 29, 19, 150),
        (61, 47, 1200, 37, 23, 200),
        (53, 71, 1500, 43, 31, 260),
    ]
]

_DEEP_SPLINTER = [
    (
        "exists k: %d*i <= %d*k and %d*k <= %d*i + %d "
        "and 0 <= i <= %d and 0 <= k <= %d and i + k <= %d"
        % (a, b, b, a, c, n, n2, s),
        ("i",),
    )
    for (a, b, c, n, n2, s) in [
        (23, 7, 40, 60, 240, 280),
        (31, 9, 55, 80, 320, 360),
        (19, 5, 33, 70, 300, 330),
        (29, 8, 49, 90, 380, 420),
    ]
]

_FAMILIES = {
    "large_coeff": _LARGE_COEFF,
    "deep_splinter": _DEEP_SPLINTER,
}


def _cold():
    clear_answer_memo()
    clear_sat_cache()
    reset_fresh_counter()


def _run(family, backend):
    cases = _FAMILIES[family]

    def once():
        _cold()
        start = time.perf_counter()
        counts = tuple(
            count(text, list(over), backend=backend).evaluate({})
            for text, over in cases
        )
        return counts, time.perf_counter() - start

    # Earlier bench modules leave large answer-memo heaps behind;
    # collect before timing so GC pauses don't land inside a rep.
    gc.collect()
    once()  # warm-up: imports, parser tables, allocator
    counts, wall = min((once() for _ in range(3)), key=lambda pair: pair[1])
    _RUNS[(family, backend)] = (counts, wall)


def test_genfunc_large_coeff_recursion():
    _run("large_coeff", "recursion")


def test_genfunc_large_coeff_genfunc():
    _run("large_coeff", "genfunc")


def test_genfunc_deep_splinter_recursion():
    _run("deep_splinter", "recursion")


def test_genfunc_deep_splinter_genfunc():
    _run("deep_splinter", "genfunc")


def test_genfunc_identity_and_speedup():
    rows = []
    summary = {}
    for family in _FAMILIES:
        rec_counts, rec_wall = _RUNS[(family, "recursion")]
        gf_counts, gf_wall = _RUNS[(family, "genfunc")]
        # The differential contract: both backends count the same sets.
        assert gf_counts == rec_counts, family
        ratio = rec_wall / gf_wall if gf_wall else float("inf")
        rows.append(
            "%-14s recursion %.4fs  genfunc %.4fs  speedup %.2fx"
            % (family, rec_wall, gf_wall, ratio)
        )
        summary[family] = {
            "recursion_seconds": round(rec_wall, 6),
            "genfunc_seconds": round(gf_wall, 6),
            "speedup": round(ratio, 2),
            "counts": list(rec_counts),
        }
    # The per-test wall includes untimed warm-up shared by both
    # backends; the inner workload walls are the acceptance numbers,
    # so publish them in the artifact too.
    record_extra("genfunc_vs_recursion", summary)
    report("genfunc: cone pipeline vs recursion", rows)
