"""T1: the introduction's table of simple symbolic summations.

| Sum                       | Paper's answer          |
|---------------------------|-------------------------|
| Σ 1, 1<=i<=10             | 10                      |
| Σ 1, 1<=i<=n              | n          (if n >= 1)  |
| Σ 1, 1<=i,j<=n            | n²         (if n >= 1)  |
| Σ 1, 1<=i<j<=n            | n(n-1)/2   (if n >= 2)  |
"""

from conftest import report
from repro.core import count
from repro.qpoly import Polynomial


ROWS = [
    ("1 <= i <= 10", ["i"], "10"),
    ("1 <= i <= n", ["i"], "n"),
    ("1 <= i <= n and 1 <= j <= n", ["i", "j"], "n**2"),
    ("1 <= i and i < j and j <= n", ["i", "j"], "1/2*n**2 - 1/2*n"),
]


def compute_all():
    return [count(text, over) for text, over, _ in ROWS]


def test_intro_table(benchmark):
    results = benchmark(compute_all)
    lines = []
    for (text, over, want), result in zip(ROWS, results):
        (term,) = result.terms
        assert str(term.value) == want, (text, str(term.value))
        lines.append("%-42s -> %s" % (text, result))
    report("T1 intro table", lines)
    # spot values
    assert results[0].evaluate({}) == 10
    assert results[2].evaluate(n=7) == 49
    assert results[3].evaluate(n=10) == 45
