"""X3 (§7 ablation): free vs predetermined summation order.

The paper's conclusion: "Summations over several variables should not
presume an order in which to perform the summation."  Tawbi's fixed
order splits Example 1 into 3 pieces; the free order needs 2.  On a
deeper nest the gap widens.
"""

from conftest import report
from repro.baselines import tawbi_count
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse

EXAMPLE1 = "1 <= i <= n and 1 <= j <= i and j <= k <= m"
DEEP = (
    "1 <= i <= n and 1 <= j <= i and j <= k <= m and 1 <= l <= k and l <= p2"
)


def test_free_order(benchmark):
    result = benchmark(count, EXAMPLE1, ["i", "j", "k"])
    assert len(result.terms) == 2
    report("X3 free order (Example 1)", ["pieces: %d" % len(result.terms)])


def test_fixed_order(benchmark):
    (clause,) = to_dnf(parse(EXAMPLE1))

    def run():
        return tawbi_count(clause, ["k", "j", "i"])

    _, pieces = benchmark(run)
    assert pieces == 3
    report("X3 fixed order (Example 1)", ["pieces: %d" % pieces])


def test_deeper_nest_gap(benchmark):
    (clause,) = to_dnf(parse(DEEP))

    def run():
        ours = count(DEEP, ["i", "j", "k", "l"])
        _, fixed_pieces = tawbi_count(clause, ["l", "k", "j", "i"])
        return ours, fixed_pieces

    ours, fixed_pieces = benchmark(run)
    assert len(ours.terms) < fixed_pieces
    # correctness of both at a sample point
    env = {"n": 4, "m": 5, "p2": 3}
    want = sum(
        1
        for i in range(1, 5)
        for j in range(1, i + 1)
        for k in range(j, 6)
        for l in range(1, min(k, 3) + 1)
    )
    assert ours.evaluate(env) == want
    report(
        "X3 four-deep nest",
        ["free: %d pieces, fixed: %d pieces" % (len(ours.terms), fixed_pieces)],
    )
