"""Sharded serving: multi-process scaling, fleet coalescing, parity.

The one resource a single ``repro serve`` daemon cannot buy is a
second GIL: its process pool parallelises the *executor* but every
request still funnels through one Python process.  ``repro
shardserve`` runs N whole daemons and routes by content-hash prefix,
so a cold-heavy workload should scale with shard count on a
multi-core box.

This bench drives both topologies over real HTTP with the same cold
corpus (unique ~2s count jobs, ``REPRO_SERVE_WORKERS=1`` on every
daemon so the only parallelism under test is the shard fan-out) and
publishes single-vs-sharded walls to ``BENCH_JSON`` under
``shard_scaling``.  The >= 2.5x speedup assertion is gated on
``os.cpu_count() >= 4``: on fewer cores the shards time-slice one CPU
and the measurement is meaningless (the artifact records the core
count so readers can tell which regime a committed snapshot ran in).

Unconditional contracts, any core count:

* zero failed requests on either topology;
* fleet-wide dedup: no content hash cold-computes twice
  (``duplicate_computations == 0``), and an 8-client burst of
  alpha-renamed spellings of one fresh formula costs the fleet exactly
  one cold computation;
* a warm pass over the sharded topology recomputes nothing;
* sharded responses are byte-identical to single-daemon responses
  modulo :data:`~repro.service.batch.VOLATILE_RESPONSE_KEYS`.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

from conftest import record_extra, report
from repro.serve.loadgen import build_requests, fleet_summary, run_http
from repro.service.batch import VOLATILE_RESPONSE_KEYS

SHARDS = 4
CLIENTS = 8
STARTUP_TIMEOUT = 90

#: Unique cold jobs: each divisor is a distinct canonical hash with
#: roughly equal cost (~2s of splintering + counting on one core).
COLD_CORPUS = [
    {
        "id": "cold-d%d" % d,
        "kind": "count",
        "formula": (
            "1 <= i <= n and 1 <= j <= m and 3*j <= 2*i + n"
            " and %d | (i + j)" % d
        ),
        "over": ["i", "j"],
    }
    for d in range(2, 8)
]

BURST_BASE = {
    "id": "burst",
    "kind": "count",
    "formula": "1 <= i <= n and 1 <= j <= m and 5*j <= 3*i + 2*n",
    "over": ["i", "j"],
}


def stable(response):
    return {
        k: v
        for k, v in response.items()
        if k not in VOLATILE_RESPONSE_KEYS and k != "id"
    }


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "src")
    )
    env["REPRO_SERVE_WORKERS"] = "1"
    env.pop("REPRO_SHARD_INDEX", None)
    return env


def _spawn(argv, cwd, needle):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + argv,
        stderr=subprocess.PIPE,
        cwd=cwd,
        env=_env(),
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    lines = []
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if not line:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
            continue
        text = line.decode("utf-8", "replace")
        lines.append(text)
        if needle in text:
            port = int(text.split("http://127.0.0.1:")[1].split(" ")[0])
            return proc, port
    proc.kill()
    raise AssertionError(
        "no ready line %r in:\n%s" % (needle, "".join(lines))
    )


def _stop(proc):
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    # Drain the stderr pipe so the child never blocks on a full buffer.
    proc.stderr.read()


def _stats(port):
    with urllib.request.urlopen(
        "http://127.0.0.1:%d/stats" % port, timeout=10
    ) as response:
        return json.loads(response.read())


def _pass(port, requests, clients=CLIENTS):
    summary, records = asyncio.run(
        run_http(
            "http://127.0.0.1:%d" % port,
            requests,
            clients,
            keep_responses=True,
        )
    )
    assert summary["errors"] == 0, summary
    return summary, records


def test_shard_scaling_and_fleet_semantics(tmp_path):
    requests = build_requests(COLD_CORPUS, len(COLD_CORPUS), seed=0)
    cores = os.cpu_count() or 1

    # -- single daemon, cold pass --------------------------------------
    single, single_port = _spawn(
        [
            "serve",
            "--host",
            "127.0.0.1",
            "--http-port",
            "0",
            "--cache",
            str(tmp_path / "single.sqlite"),
        ],
        str(tmp_path),
        "repro serve: listening",
    )
    try:
        single_summary, single_records = _pass(single_port, requests)
    finally:
        _stop(single)
    single_wall = single_summary["wall_seconds"]

    # -- sharded topology ----------------------------------------------
    router, port = _spawn(
        [
            "shardserve",
            "--shards",
            str(SHARDS),
            "--http-port",
            "0",
            "--cache-dir",
            str(tmp_path / "shards"),
        ],
        str(tmp_path),
        "router listening",
    )
    try:
        shard_summary, shard_records = _pass(port, requests)
        shard_wall = shard_summary["wall_seconds"]
        fleet = shard_summary["fleet"]
        assert fleet["duplicate_computations"] == 0
        assert fleet["cold_responses"] == len(COLD_CORPUS)
        assert len(fleet["per_shard"]) >= 2  # the corpus really spread

        # Byte parity with the single daemon, modulo volatile keys.
        by_id = {r["id"]: r["response"] for r in single_records}
        for record in shard_records:
            assert stable(record["response"]) == stable(
                by_id[record["id"]]
            ), record["id"]

        # Warm pass: the fleet recomputes nothing.
        warm_summary, _ = _pass(port, requests)
        assert warm_summary["fleet"]["cold_responses"] == 0
        assert "cold" not in warm_summary["tiers"]

        # 8-client burst of alpha-renamed spellings of one fresh
        # formula: exactly one cold computation fleet-wide.
        cold_before = _stats(port)["serve"]["counters"]["cold_jobs"]
        burst = build_requests([BURST_BASE], 8, rename_mix=1.0, seed=9)
        burst_summary, _ = _pass(port, burst, clients=8)
        cold_after = _stats(port)["serve"]["counters"]["cold_jobs"]
        assert cold_after - cold_before == 1
        assert burst_summary["fleet"]["distinct_cold_hashes"] <= 1
        assert burst_summary["fleet"]["duplicate_computations"] == 0
    finally:
        _stop(router)

    speedup = single_wall / shard_wall if shard_wall else 0.0
    record_extra(
        "shard_scaling",
        {
            "cores": cores,
            "shards": SHARDS,
            "clients": CLIENTS,
            "unique_cold_jobs": len(COLD_CORPUS),
            "single_wall_seconds": round(single_wall, 3),
            "sharded_wall_seconds": round(shard_wall, 3),
            "speedup": round(speedup, 3),
            "speedup_asserted": cores >= SHARDS,
            "per_shard": fleet["per_shard"],
            "warm_throughput_rps": warm_summary["throughput_rps"],
        },
    )
    report(
        "SHARD scaling (%d cores)" % cores,
        [
            "single: %.2fs, %d shards: %.2fs -> %.2fx"
            % (single_wall, SHARDS, shard_wall, speedup),
            "per-shard: %s"
            % {
                s: meta["count"]
                for s, meta in sorted(fleet["per_shard"].items())
            },
        ],
    )
    if cores >= SHARDS:
        assert speedup >= 2.5, (
            "expected >= 2.5x at %d shards on %d cores, got %.2fx"
            % (SHARDS, cores, speedup)
        )
