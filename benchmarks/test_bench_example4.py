"""E4 (§6 Example 4, FST91): distinct memory locations of a(6i+9j-7).

for i := 1 to 8, j := 1 to 5: touch a(6i + 9j - 7).  Paper: 25
distinct locations, computed as (Σ x=8 : 1) + (Σ 5<=α<=27 : 1) +
(Σ x=86 : 1) = 25.
"""

from conftest import report
from repro.apps import ArrayRef, Loop, LoopNest, Statement, memory_locations_touched
from repro.baselines import inclusion_exclusion_count
from repro.core import count


def nest():
    return LoopNest(
        [Loop("i", 1, 8), Loop("j", 1, 5)],
        [Statement(flops=2, refs=[ArrayRef("a", ["6*i + 9*j - 7"])])],
    )


def test_count_25(benchmark):
    result = benchmark(memory_locations_touched, nest(), "a")
    assert result.evaluate({}) == 25  # the paper's number
    report("E4 FST example", ["distinct locations: 25 (paper: 25)"])


def test_formula_route(benchmark):
    text = "exists i, j: 1 <= i <= 8 and 1 <= j <= 5 and x = 6*i + 9*j - 7"
    result = benchmark(count, text, ["x"])
    assert result.evaluate({}) == 25
