"""Build-once-query-many vs per-query engine work: the PR 9 bench.

The automaton backend's reason to exist is amortization: compiling a
formula to a binary DFA costs something once, after which every
membership query is an O(bits) walk and every threshold count is one
path DP -- independent of how the engine would re-derive the answer
per query.  Two workloads measure exactly that:

* **membership stream** -- 1000 random points against one stride+
  inequality formula.  The pre-PR way a service answers "is this
  point in the set" is a recursion *count* of the point-pinned
  formula (``formula and i = p and j = q``, answer 1 or 0) -- fresh
  engine work per point, since the answer memo keys on the pinned
  formula.  The automaton walks ~10 letters per query on the DFA
  built once.
* **threshold sweep** -- ``count_below`` at a ladder of bounds.  The
  engine re-counts a boxed formula from scratch per bound (recursion
  backend, cold caches, the pre-PR serving reality); the automaton
  products the resident DFA with interval atoms and runs the path DP.

The closing test asserts the answers agree -- the differential
contract -- and that the membership stream's amortized speedup clears
10x (the PR acceptance floor; measured two orders above it on a warm
laptop, so the margin absorbs noisy CI boxes).  ``BENCH_PR9.json`` is
the committed snapshot.
"""

import gc
import random
import time

from conftest import record_extra, report
from repro.automaton import (
    automaton_for,
    clear_automaton_cache,
    count_below,
    member,
)
from repro.core import count
from repro.core.memo import clear_answer_memo
from repro.core.options import SumOptions
from repro.omega.constraints import reset_fresh_counter
from repro.omega.satisfiability import clear_sat_cache
from repro.presburger.parser import parse

_FORMULA = (
    "0 <= i <= 200 and 0 <= j <= 200 and 23*i + 31*j <= 4000"
    " and 3 | (i + 2*j)"
)
_OVER = ("i", "j")
_N_QUERIES = 1000
_BOUNDS = (16, 32, 64, 128, 256)

#: label -> measurement dict; filled by the timed tests, read by the
#: closing identity/speedup test.
_RUNS = {}


def _cold():
    clear_answer_memo()
    clear_sat_cache()
    clear_automaton_cache()
    reset_fresh_counter()


def _points():
    rng = random.Random(0xD0FA)
    return [
        (rng.randint(-64, 256), rng.randint(-64, 256))
        for _ in range(_N_QUERIES)
    ]


def test_membership_per_query_engine():
    """1000 points, each a point-pinned recursion count (no reuse)."""
    _cold()
    points = _points()
    options = SumOptions(max_residue_split=256)

    def query(i, j):
        result = count(
            "%s and i = %d and j = %d" % (_FORMULA, i, j),
            list(_OVER),
            options,
            backend="recursion",
        )
        return int(result.evaluate({})) == 1

    gc.collect()
    query(0, 0)  # warm-up: parser tables, sat-cache plumbing
    start = time.perf_counter()
    answers = [query(i, j) for i, j in points]
    wall = time.perf_counter() - start
    _RUNS["member_engine"] = {"wall": wall, "answers": answers}


def test_membership_automaton_stream():
    """The same 1000 points: build the DFA once, then O(bits) walks."""
    _cold()
    f = parse(_FORMULA)
    points = _points()
    gc.collect()
    start = time.perf_counter()
    aut = automaton_for(f, list(_OVER))
    build_wall = time.perf_counter() - start
    start = time.perf_counter()
    answers = [member(aut, p) for p in points]
    query_wall = time.perf_counter() - start
    _RUNS["member_automaton"] = {
        "build_wall": build_wall,
        "query_wall": query_wall,
        "wall": build_wall + query_wall,
        "states": aut.n_states,
        "answers": answers,
    }


def test_threshold_per_query_recursion():
    """count_below at each bound, re-counted from scratch (recursion)."""
    gc.collect()
    totals = []
    start = time.perf_counter()
    for bound in _BOUNDS:
        _cold()
        box = " and ".join(
            "0 <= %s and %s <= %d" % (v, v, bound - 1) for v in _OVER
        )
        # The 23/31 coefficients against the stride yield a 69-case
        # residue split; raise the safety cap so the recursion can
        # answer at all (the automaton needs no such knob).
        result = count(
            "(%s) and %s" % (_FORMULA, box), list(_OVER),
            SumOptions(max_residue_split=256),
            backend="recursion",
        )
        totals.append(int(result.evaluate({})))
    wall = time.perf_counter() - start
    _RUNS["below_engine"] = {"wall": wall, "totals": totals}


def test_threshold_automaton_sweep():
    """The same ladder against one resident automaton."""
    _cold()
    f = parse(_FORMULA)
    gc.collect()
    start = time.perf_counter()
    aut = automaton_for(f, list(_OVER))
    totals = [count_below(aut, bound) for bound in _BOUNDS]
    wall = time.perf_counter() - start
    _RUNS["below_automaton"] = {"wall": wall, "totals": totals}


def test_automaton_identity_and_speedup():
    eng = _RUNS["member_engine"]
    aut = _RUNS["member_automaton"]
    # The differential contract: every query answered identically.
    assert aut["answers"] == eng["answers"]
    amortized = eng["wall"] / aut["wall"] if aut["wall"] else float("inf")
    per_query = (
        eng["wall"] / aut["query_wall"]
        if aut["query_wall"]
        else float("inf")
    )
    below_eng = _RUNS["below_engine"]
    below_aut = _RUNS["below_automaton"]
    assert below_aut["totals"] == below_eng["totals"]
    below_ratio = (
        below_eng["wall"] / below_aut["wall"]
        if below_aut["wall"]
        else float("inf")
    )
    summary = {
        "queries": _N_QUERIES,
        "engine_seconds": round(eng["wall"], 6),
        "automaton_build_seconds": round(aut["build_wall"], 6),
        "automaton_query_seconds": round(aut["query_wall"], 6),
        "automaton_states": aut["states"],
        "speedup_amortized": round(amortized, 2),
        "speedup_queries_only": round(per_query, 2),
        "count_below": {
            "bounds": list(_BOUNDS),
            "totals": below_eng["totals"],
            "engine_seconds": round(below_eng["wall"], 6),
            "automaton_seconds": round(below_aut["wall"], 6),
            "speedup": round(below_ratio, 2),
        },
    }
    record_extra("automaton_vs_engine", summary)
    report(
        "automaton: build-once-query-many vs per-query engine",
        [
            "membership  engine %.4fs  automaton build %.4fs + queries %.4fs"
            % (eng["wall"], aut["build_wall"], aut["query_wall"]),
            "amortized speedup %.1fx (queries alone %.1fx)"
            % (amortized, per_query),
            "count_below engine %.4fs  automaton %.4fs  speedup %.1fx"
            % (below_eng["wall"], below_aut["wall"], below_ratio),
        ],
    )
    # PR acceptance floor: the 1k-query stream amortizes the build
    # more than 10x over per-query engine evaluation.
    assert amortized >= 10.0, summary
