"""E2 (§6 Example 2, Haghighat-Polychronopoulos first example).

Σ over 1<=i<=n, 3<=j<=i, j<=k<=5.  Paper's answer (after final
simplification): (Σ : 5 <= n : 6n - 16) + (Σ : 3 <= n < 5 : 5n - 12).
HP's own answer uses min/max/p() operators and "the results tend to be
much more complicated"; their derivation takes 9 steps.
"""

from conftest import report
from repro.baselines import hp_nested_sum
from repro.core import count
from repro.presburger.dnf import to_dnf
from repro.presburger.parser import parse

TEXT = "1 <= i <= n and 3 <= j <= i and j <= k <= 5"


def brute(n):
    return sum(
        1
        for i in range(1, n + 1)
        for j in range(3, i + 1)
        for k in range(j, 6)
    )


def test_ours(benchmark):
    result = benchmark(count, TEXT, ["i", "j", "k"])
    assert len(result.terms) == 2
    for n in range(0, 12):
        assert result.evaluate(n=n) == brute(n)
    # the paper's regimes
    for n in range(5, 12):
        assert result.evaluate(n=n) == 6 * n - 16
    for n in (3, 4):
        assert result.evaluate(n=n) == 5 * n - 12
    report("E2 ours", [str(result)])


def test_hp_baseline(benchmark):
    (clause,) = to_dnf(parse(TEXT))
    expr = benchmark(hp_nested_sum, clause, ["k", "j", "i"], 1)
    for n in range(0, 12):
        assert expr.evaluate({"n": n}) == brute(n)
    ours = count(TEXT, ["i", "j", "k"]).simplified()
    ours_size = sum(
        len(t.value.terms) + len(t.guard.constraints) for t in ours.terms
    )
    assert expr.size() > ours_size  # "much more complicated"
    report(
        "E2 HP baseline",
        [
            "HP expression nodes: %d, our answer size: %d" % (expr.size(), ours_size),
            "HP form (head): %s..." % str(expr)[:100],
        ],
    )
