"""Benchmark helpers: each bench regenerates one paper table/figure.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark
asserts the paper's reported values (counts, piece numbers, closed
forms) in addition to timing the computation, so the bench suite
doubles as the experiment reproduction harness; EXPERIMENTS.md records
paper-vs-measured for each entry.

Every test also runs under :mod:`repro.core.stats` collection: the
engine-counter deltas (sat calls, cache hits, FM eliminations, ...)
are recorded next to the wall time.  Set ``BENCH_JSON=<path>`` to
write the per-test records as a JSON artifact at the end of the
session.  Two conventions use the knob:

* CI's bench-smoke step writes ``BENCH_smoke.json`` and uploads it as
  a build artifact on every run.
* Per-PR snapshots are committed at the repo root as
  ``BENCH_PR<n>.json`` (``BENCH_JSON=BENCH_PR<n>.json pytest
  benchmarks/ -q``), so the bench trajectory across the PR stack is
  recorded in-tree and regressions are diffable from git history
  alone.  Wall times are machine-dependent; the committed snapshots
  are for trend reading, the asserted counts/closed forms are the
  hard contract.
"""

import json
import os
import time

import pytest

from repro.core import stats
from repro.omega.constraints import reset_fresh_counter

_RECORDS = []
_EXTRAS = {}


def record_extra(key, value):
    """Attach an extra top-level section to the BENCH_JSON artifact.

    Benches that time sub-workloads inside a test (excluding setup the
    per-test wall would otherwise dilute with) use this to publish the
    inner measurements next to the per-test records.
    """
    _EXTRAS[key] = value


def report(experiment_id, rows):
    """Print a paper-style table (visible with -s / in failure output)."""
    print("\n[%s]" % experiment_id)
    for row in rows:
        print("   ", row)


@pytest.fixture(autouse=True)
def _bench_stats(request):
    """Record wall time and engine-counter deltas for every bench."""
    reset_fresh_counter()
    with stats.collecting_stats() as counters:
        start = time.perf_counter()
        yield
        elapsed = time.perf_counter() - start
        snapshot = dict(counters)
    _RECORDS.append(
        {
            "test": request.node.nodeid,
            "seconds": round(elapsed, 6),
            "stats": snapshot,
        }
    )


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("BENCH_JSON")
    if not path or not _RECORDS:
        return
    totals = {}
    for record in _RECORDS:
        for name, value in record["stats"].items():
            totals[name] = totals.get(name, 0) + value
    payload = {
        "wall_seconds": round(sum(r["seconds"] for r in _RECORDS), 6),
        "stats_totals": totals,
        "tests": _RECORDS,
    }
    if _EXTRAS:
        payload["workloads"] = {k: _EXTRAS[k] for k in sorted(_EXTRAS)}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
