"""Benchmark helpers: each bench regenerates one paper table/figure.

Run with ``pytest benchmarks/ --benchmark-only``.  Every benchmark
asserts the paper's reported values (counts, piece numbers, closed
forms) in addition to timing the computation, so the bench suite
doubles as the experiment reproduction harness; EXPERIMENTS.md records
paper-vs-measured for each entry.
"""

import pytest


def report(experiment_id, rows):
    """Print a paper-style table (visible with -s / in failure output)."""
    print("\n[%s]" % experiment_id)
    for row in rows:
        print("   ", row)
