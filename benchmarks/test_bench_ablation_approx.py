"""X1 (§4.6 ablation): exact answers vs upper/lower bounds.

The paper: "It may often be preferable to compute both an upper and
lower bound on the sum.  Only if these values are far apart may it be
worthwhile to compute the exact answer."  We measure both the cost and
the quality gap on a formula whose exact answer needs splintering.
"""

from conftest import report
from repro.core import Strategy, SumOptions, count

# two rational bounds: exact answer splinters into 6 residue cases
TEXT = "n <= 2*i and 3*i <= 4*n + 5"


def truth(n):
    return sum(1 for i in range(-50, 200) if n <= 2 * i and 3 * i <= 4 * n + 5)


def test_exact(benchmark):
    result = benchmark(count, TEXT, ["i"], SumOptions(strategy=Strategy.SPLINTER))
    assert result.exactness == "exact"
    for n in range(0, 30):
        assert result.evaluate(n=n) == truth(n)
    report("X1 exact (splinter)", ["terms: %d" % len(result.terms)])


def test_upper(benchmark):
    result = benchmark(count, TEXT, ["i"], SumOptions(strategy=Strategy.UPPER))
    assert result.exactness == "upper"
    gap = 0
    for n in range(0, 30):
        assert result.evaluate(n=n) >= truth(n)
        gap = max(gap, result.evaluate(n=n) - truth(n))
    assert gap < 2  # (a-1)/a + (b-1)/b < 2
    report("X1 upper bound", ["terms: %d, max gap: %s" % (len(result.terms), gap)])


def test_lower(benchmark):
    result = benchmark(count, TEXT, ["i"], SumOptions(strategy=Strategy.LOWER))
    assert result.exactness == "lower"
    gap = 0
    for n in range(0, 30):
        assert result.evaluate(n=n) <= truth(n)
        gap = max(gap, truth(n) - result.evaluate(n=n))
    assert gap < 2
    report("X1 lower bound", ["terms: %d, max gap: %s" % (len(result.terms), gap)])


def test_bounds_cheaper_than_exact(benchmark):
    """The bound answers use fewer pieces than the exact splinters --
    the trade the paper describes."""
    exact = benchmark(count, TEXT, ["i"], SumOptions(strategy=Strategy.SPLINTER))
    upper = count(TEXT, ["i"], SumOptions(strategy=Strategy.UPPER))
    assert len(upper.terms) < len(exact.terms)
    report(
        "X1 piece counts",
        ["exact: %d terms, upper: %d terms" % (len(exact.terms), len(upper.terms))],
    )
