"""S1 (§5.1.1): summarizing stencil offset sets -- two methods.

Paper: "the Omega test can summarize 4-point and 5-point stencils
specified this way [0-1 programming] as a convex region plus stride
constraints, [but] it was unable to produce a convex summary for a
9-point stencil"; the hull route handles all three.  We reproduce the
comparison and report what *our* implementation achieves on each.
"""

import pytest

from conftest import report
from repro.polyhedra import summarize_offsets, zero_one_summary

FIVE = [(0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)]
FOUR = [(-1, 0), (1, 0), (0, -1), (0, 1)]
NINE = [(a, b) for a in (-1, 0, 1) for b in (-1, 0, 1)]

STENCILS = [("4-point", FOUR), ("5-point", FIVE), ("9-point", NINE)]


def points_of_formula(f, box=3):
    return {
        (x, y)
        for x in range(-box, box + 1)
        for y in range(-box, box + 1)
        if f.evaluate({"x": x, "y": y})
    }


def points_of_clauses(clauses, box=3):
    out = set()
    for c in clauses:
        for x in range(-box, box + 1):
            for y in range(-box, box + 1):
                if c.is_satisfied({"x": x, "y": y}):
                    out.add((x, y))
    return out


@pytest.mark.parametrize("name,points", STENCILS, ids=[s[0] for s in STENCILS])
def test_hull_method(benchmark, name, points):
    def run():
        return summarize_offsets(points, ["x", "y"])

    formula, exact = benchmark(run)
    assert exact, "%s: hull+stride summary not exact" % name
    assert points_of_formula(formula) == set(points)


@pytest.mark.parametrize(
    "name,points", STENCILS[:2], ids=[s[0] for s in STENCILS[:2]]
)
def test_zero_one_method(benchmark, name, points):
    def run():
        return zero_one_summary(points, ["x", "y"])

    clauses, compact = benchmark(run)
    # semantics always hold; compactness is what the paper found iffy
    assert points_of_clauses(clauses) == set(points)
    # Our measurement: 5-point compact (single clause), 4-point 3
    # disjoint clauses -- the paper's Omega summarized both.  See
    # EXPERIMENTS.md S1 for the comparison.
    if name == "5-point":
        assert compact
    report(
        "S1 0-1 method on %s" % name,
        [
            "clauses: %d, compact: %s (paper: 4/5-point yes, 9-point no)"
            % (len(clauses), compact)
        ],
    )


def test_zero_one_nine_point_not_compact(benchmark):
    """The 9-point failure case: the simplification work blows up (the
    paper's implementation "was unable to produce a convex summary"),
    so the work budget trips and the per-point fallback is returned --
    ``compact = False`` either way.  (Run without a budget the
    computation grinds for tens of seconds and still ends with several
    clauses.)"""

    def run():
        # a modest budget keeps the bench bounded; the outcome is the
        # same with the default (tried: it grinds longer, still fails)
        return zero_one_summary(NINE, ["x", "y"], budget=200)

    clauses, compact = benchmark(run)
    assert not compact  # matches the paper's negative result
    assert points_of_clauses(clauses) == set(NINE)
    report(
        "S1 0-1 method on 9-point",
        ["clauses: %d, compact: %s (paper: no)" % (len(clauses), compact)],
    )
