"""X2 (§7 ablation): redundant-constraint elimination on/off.

The paper's conclusion: "Eliminating redundant constraints is useful."
With it off, bound splits multiply on constraints a cheap test would
have discarded.
"""

from conftest import report
from repro.core import SumOptions, count

# 1 <= i is redundant (j >= 1 and i >= j); keeping it doubles the
# upper-bound split work downstream
TEXT = "1 <= i <= n and 1 <= j <= i and j <= m and i <= n + m"


def brute(n, m):
    return sum(
        1
        for i in range(1, n + 1)
        for j in range(1, min(i, m) + 1)
    )


def test_with_redundancy_elimination(benchmark):
    result = benchmark(count, TEXT, ["i", "j"], SumOptions(remove_redundant=True))
    for n in range(0, 6):
        for m in range(0, 6):
            assert result.evaluate(n=n, m=m) == brute(n, m)
    report("X2 with elimination", ["terms: %d" % len(result.terms)])


def test_without_redundancy_elimination(benchmark):
    result = benchmark(
        count, TEXT, ["i", "j"], SumOptions(remove_redundant=False)
    )
    for n in range(0, 6):
        for m in range(0, 6):
            assert result.evaluate(n=n, m=m) == brute(n, m)
    report("X2 without elimination", ["terms: %d" % len(result.terms)])


def test_fewer_terms_with_elimination(benchmark):
    with_r = benchmark(count, TEXT, ["i", "j"], SumOptions(remove_redundant=True))
    without = count(TEXT, ["i", "j"], SumOptions(remove_redundant=False))
    assert len(with_r.terms) <= len(without.terms)
    report(
        "X2 term comparison",
        [
            "with: %d terms, without: %d terms"
            % (len(with_r.terms), len(without.terms))
        ],
    )
