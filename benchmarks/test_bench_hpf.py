"""A1 (§3.3): HPF block-cyclic distribution analyses.

The paper's mapping: T(0:1024) distributed CYCLIC(4) onto 8 processors,
t = l + 4p + 32c ∧ 0 <= l <= 3 ∧ 0 <= p <= 7.  Counting solutions of
formulas over the mapping quantifies ownership, message traffic and
buffer sizes.
"""

from conftest import report
from repro.apps import (
    BlockCyclicDistribution,
    communication_volume,
    message_buffer_size,
)
from repro.apps.comm import total_messages


def owner(t):
    return (t // 4) % 8


def test_ownership_counts(benchmark):
    dist = BlockCyclicDistribution(block=4, procs=8)

    def run():
        return dist.elements_per_processor("0 <= t <= 1024")

    per = benchmark(run)
    counts = [per.evaluate(p=p) for p in range(8)]
    assert counts == [129] + [128] * 7
    assert sum(counts) == 1025
    report("A1 ownership (T(0:1024), CYCLIC(4) on 8)", ["per-proc: %s" % counts])


def test_shift_communication(benchmark):
    dist = BlockCyclicDistribution(block=4, procs=8)

    def run():
        return communication_volume(dist, "0 <= t <= 1023", shift=1)

    vol = benchmark(run)
    for q in range(8):
        for p in range(8):
            if p == q:
                continue
            want = sum(
                1
                for t in range(0, 1024)
                if owner(t) == p and owner(t + 1) == q
            )
            assert vol.evaluate(p=p, q=q) == want
    buf = message_buffer_size(dist, "0 <= t <= 1023", 1)
    msgs = total_messages(dist, "0 <= t <= 1023", 1)
    assert buf == 32  # 32 block boundaries feed each neighbour pair
    assert msgs == 8  # a ring: every processor sends to one neighbour
    report(
        "A1 shift-by-1 communication",
        ["buffer size: %d elements, messages: %d" % (buf, msgs)],
    )


def test_block_shift_worst_case(benchmark):
    dist = BlockCyclicDistribution(block=4, procs=8)

    def run():
        return communication_volume(dist, "0 <= t <= 1023", shift=4)

    vol = benchmark(run)
    moved = sum(
        vol.evaluate(p=p, q=q)
        for p in range(8)
        for q in range(8)
        if p != q
    )
    # shifting by a full block moves every element to the neighbour
    assert moved == 1024
    report("A1 shift-by-block", ["total elements moved: %d of 1024" % moved])
