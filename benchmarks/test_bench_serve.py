"""Serve daemon: tier latencies, coalescing, and warm-pass zero work.

Four contracts, measured with the load generator's in-process driver
(the daemon core without socket overhead, so the numbers isolate the
serving tiers themselves):

* a cold pass over the base corpus computes each unique content hash
  exactly once (alpha-renamed duplicates ride along for free), and a
  second pass over the same corpus is answered entirely without cold
  dispatches;
* the warm pass does **zero engine work in the daemon process**: no
  forks (``cold_jobs`` delta 0) and no satisfiability calls;
* a concurrent burst of alpha-renamed spellings of one fresh request
  triggers exactly one executor computation -- the rest coalesce onto
  it or land warm after it settles;
* daemon responses are byte-identical to ``run_batch`` responses for
  the same requests once volatile keys are stripped.

Throughput and per-tier p50/p99 latency for the cold and warm passes
are published to the ``BENCH_JSON`` artifact under the
``serve_loadgen`` and ``serve_coalesce`` workload keys.
"""

import asyncio
import json

from conftest import record_extra, report
from repro.core import stats
from repro.serve.daemon import CountingDaemon, ServeConfig
from repro.serve.loadgen import base_requests, build_requests, run_inprocess
from repro.service.batch import VOLATILE_RESPONSE_KEYS, run_batch
from repro.service.request import JobRequest

N_REQUESTS = 48
N_CLIENTS = 8
RENAME_MIX = 0.5


def stable(response):
    return {
        k: v
        for k, v in response.items()
        if k not in VOLATILE_RESPONSE_KEYS
    }


def _tier_line(summary):
    parts = []
    for tier, snap in sorted(summary["tiers"].items()):
        parts.append(
            "%s n=%d p50=%.2fms p99=%.2fms"
            % (tier, snap["count"], snap["p50_ms"], snap["p99_ms"])
        )
    return ", ".join(parts)


def test_cold_then_warm_pass(tmp_path):
    base = base_requests()
    requests = build_requests(
        base, N_REQUESTS, rename_mix=RENAME_MIX, seed=1
    )
    config = ServeConfig(
        cache_path=str(tmp_path / "serve-bench.sqlite"), workers=4
    )
    results = asyncio.run(
        run_inprocess(requests, clients=N_CLIENTS, config=config, passes=2)
    )
    (pass1, _), (pass2, _) = results
    assert pass1["errors"] == 0 and pass2["errors"] == 0

    counters1 = pass1["serve"]["counters"]
    counters2 = pass2["serve"]["counters"]
    # 48 requests cycle 8 base jobs (half alpha-renamed): exactly one
    # computation per unique content hash, ever.
    assert counters1["cold_jobs"] == len(base)
    assert counters2["cold_jobs"] == counters1["cold_jobs"]
    assert "cold" not in pass2["tiers"]
    assert pass2["serve"]["hit_rates"]["warm"] > 0.4

    record_extra(
        "serve_loadgen",
        {
            "requests_per_pass": N_REQUESTS,
            "clients": N_CLIENTS,
            "rename_mix": RENAME_MIX,
            "unique_jobs": len(base),
            "cold_pass": {
                "throughput_rps": pass1["throughput_rps"],
                "tiers": pass1["tiers"],
                "counters": counters1,
            },
            "warm_pass": {
                "throughput_rps": pass2["throughput_rps"],
                "tiers": pass2["tiers"],
                "counters": {
                    k: counters2[k] - counters1[k] for k in counters2
                },
            },
        },
    )
    report(
        "SERVE cold pass",
        [
            "%d requests, %d clients: %.0f req/s" % (
                N_REQUESTS, N_CLIENTS, pass1["throughput_rps"]
            ),
            _tier_line(pass1),
        ],
    )
    report(
        "SERVE warm pass",
        [
            "%d requests, %d clients: %.0f req/s" % (
                N_REQUESTS, N_CLIENTS, pass2["throughput_rps"]
            ),
            _tier_line(pass2),
        ],
    )


def test_warm_pass_does_zero_engine_work(tmp_path):
    base = base_requests()
    requests = build_requests(
        base, 2 * len(base), rename_mix=RENAME_MIX, seed=2
    )
    config = ServeConfig(
        cache_path=str(tmp_path / "serve-warm.sqlite"), workers=4
    )
    asyncio.run(run_inprocess(requests, clients=4, config=config))

    sat_before = stats.engine_snapshot()["sat_calls"]
    results = asyncio.run(
        run_inprocess(requests, clients=4, config=config)
    )
    sat_after = stats.engine_snapshot()["sat_calls"]
    summary, _ = results[0]
    assert summary["errors"] == 0
    # No forks and no in-process satisfiability calls: the warm tier
    # is pure store lookup.
    assert summary["serve"]["counters"]["cold_jobs"] == 0
    assert sat_after == sat_before
    report(
        "SERVE warm-only",
        [
            "%d requests, 0 cold jobs, 0 sat calls" % len(requests),
            _tier_line(summary),
        ],
    )


def test_duplicate_hash_burst_computes_once(tmp_path):
    # A formula no other bench uses, spelled 8 different ways.
    names = [("i", "j"), ("p", "q"), ("x", "y"), ("u", "w"),
             ("a", "b"), ("s", "t"), ("k0", "k1"), ("m0", "m1")]
    variants = [
        {
            "id": "burst-%d" % k,
            "kind": "count",
            "formula": "2 <= %s <= n and %s <= %s and 3 <= %s <= n + 4"
            % (a, a, b, b),
            "over": [a, b],
        }
        for k, (a, b) in enumerate(names)
    ]

    async def scenario():
        daemon = CountingDaemon(
            ServeConfig(
                cache_path=str(tmp_path / "serve-burst.sqlite"), workers=4
            )
        )
        daemon.start()
        try:
            responses = await asyncio.gather(
                *(daemon.handle(v) for v in variants)
            )
            return responses, daemon.metrics.snapshot()
        finally:
            await daemon.drain()

    responses, snap = asyncio.run(scenario())
    counters = snap["counters"]
    assert all(r["ok"] for r in responses)
    assert counters["cold_jobs"] == 1  # one computation for 8 clients
    assert (
        counters["coalesced"] + counters["warm_hits"] == len(variants) - 1
    )
    bodies = set()
    for r in responses:
        body = stable(r)
        body.pop("id")
        bodies.add(json.dumps(body, sort_keys=True))
    assert len(bodies) == 1  # identical answers modulo the request id

    record_extra(
        "serve_coalesce",
        {
            "burst_size": len(variants),
            "cold_jobs": counters["cold_jobs"],
            "coalesced": counters["coalesced"],
            "warm_hits": counters["warm_hits"],
        },
    )
    report(
        "SERVE coalesce",
        [
            "%d alpha-variants -> %d computation(s), %d coalesced,"
            " %d warm" % (
                len(variants),
                counters["cold_jobs"],
                counters["coalesced"],
                counters["warm_hits"],
            )
        ],
    )


def test_daemon_matches_batch_byte_for_byte(tmp_path):
    base = base_requests()
    batch_responses, summary = run_batch(
        [JobRequest.from_json(obj) for obj in base]
    )
    assert summary.ok == len(base)

    async def serve_all():
        daemon = CountingDaemon(
            ServeConfig(
                cache_path=str(tmp_path / "serve-parity.sqlite"), workers=2
            )
        )
        daemon.start()
        try:
            return [await daemon.handle(obj) for obj in base]
        finally:
            await daemon.drain()

    served = asyncio.run(serve_all())
    for batched, daemon_r in zip(batch_responses, served):
        assert json.dumps(stable(daemon_r), sort_keys=True) == json.dumps(
            stable(batched), sort_keys=True
        )
    report(
        "SERVE parity",
        ["%d responses byte-identical to batch" % len(base)],
    )
