"""X4: scaling of the engine with nest depth and clause count.

The paper gives complexity context ("nondeterministic lower bound of
2^2^O(n)" for full Presburger) but reports that practical formulas are
fast.  This bench charts the practical growth on the two axes users
hit: triangular nest depth (convex sums) and number of union clauses
(disjoint DNF).
"""

import pytest

from conftest import report
from repro.core import count
from repro.presburger.parser import parse


def triangular_text(depth):
    vars_ = ["i%d" % k for k in range(depth)]
    parts = ["1 <= i0 <= n"]
    for a, b in zip(vars_, vars_[1:]):
        parts.append("1 <= %s <= %s" % (b, a))
    return " and ".join(parts), vars_


@pytest.mark.parametrize("depth", [1, 2, 3, 4])
def test_depth_scaling(benchmark, depth):
    text, vars_ = triangular_text(depth)
    result = benchmark(count, text, vars_)
    # the simplex count: C(n + depth - 1, depth)
    import math

    for n in range(0, 6):
        want = math.comb(n + depth - 1, depth) if n > 0 else 0
        assert result.evaluate(n=n) == want
    report("X4 depth %d" % depth, ["terms: %d" % len(result.terms)])


@pytest.mark.parametrize("clauses", [1, 2, 3, 4])
def test_union_scaling(benchmark, clauses):
    text = " or ".join(
        "(%d <= x <= %d + n)" % (4 * k, 4 * k + 5) for k in range(clauses)
    )
    formula = parse(text)
    result = benchmark(count, formula, ["x"])
    for n in range(0, 8):
        want = len(
            {
                x
                for k in range(clauses)
                for x in range(4 * k, 4 * k + 5 + n + 1)
            }
        )
        assert result.evaluate(n=n) == want
    report("X4 union of %d clauses" % clauses, ["terms: %d" % len(result.terms)])
